"""Reference interpreter tests."""

import pytest

from repro.ir.interp import InterpreterError, run_source


class TestBasics:
    def test_arithmetic_and_print(self):
        trace = run_source(
            "      PROGRAM MAIN\n      X = 2 + 3 * 4\n      PRINT *, X\n"
            "      END\n"
        )
        assert trace.output == ["14"]

    def test_division_truncates_toward_zero(self):
        trace = run_source(
            "      PROGRAM MAIN\n      PRINT *, -7 / 2, 7 / 2\n      END\n"
        )
        assert trace.output == ["-3 3"]

    def test_division_by_zero_raises(self):
        with pytest.raises(InterpreterError):
            run_source(
                "      PROGRAM MAIN\n      X = 0\n      Y = 1 / X\n      END\n"
            )

    def test_uninitialized_reads_zero(self):
        trace = run_source("      PROGRAM MAIN\n      PRINT *, Q\n      END\n")
        assert trace.output == ["0"]

    def test_read_consumes_inputs(self):
        trace = run_source(
            "      PROGRAM MAIN\n      READ *, A, B\n      PRINT *, A + B\n"
            "      END\n",
            inputs=[10, 32],
        )
        assert trace.output == ["42"]

    def test_read_exhausted_yields_zero(self):
        trace = run_source(
            "      PROGRAM MAIN\n      READ *, A\n      PRINT *, A\n      END\n"
        )
        assert trace.output == ["0"]


class TestControlFlow:
    def test_if_else(self):
        trace = run_source(
            "      PROGRAM MAIN\n      X = 5\n"
            "      IF (X .GT. 3) THEN\n      PRINT *, 'big'\n"
            "      ELSE\n      PRINT *, 'small'\n      ENDIF\n      END\n"
        )
        assert trace.output == ["big"]

    def test_do_loop_sum(self):
        trace = run_source(
            "      PROGRAM MAIN\n      S = 0\n      DO I = 1, 10\n"
            "      S = S + I\n      ENDDO\n      PRINT *, S\n      END\n"
        )
        assert trace.output == ["55"]

    def test_do_loop_zero_trips(self):
        trace = run_source(
            "      PROGRAM MAIN\n      S = 7\n      DO I = 5, 1\n"
            "      S = 0\n      ENDDO\n      PRINT *, S\n      END\n"
        )
        assert trace.output == ["7"]

    def test_do_negative_step(self):
        trace = run_source(
            "      PROGRAM MAIN\n      S = 0\n      DO I = 5, 1, -1\n"
            "      S = S * 10 + I\n      ENDDO\n      PRINT *, S\n      END\n"
        )
        assert trace.output == ["54321"]

    def test_do_while(self):
        trace = run_source(
            "      PROGRAM MAIN\n      X = 4\n      DO WHILE (X .GT. 0)\n"
            "      X = X - 1\n      ENDDO\n      PRINT *, X\n      END\n"
        )
        assert trace.output == ["0"]

    def test_goto(self):
        trace = run_source(
            "      PROGRAM MAIN\n      GOTO 10\n      PRINT *, 'skipped'\n"
            " 10   PRINT *, 'here'\n      END\n"
        )
        assert trace.output == ["here"]

    def test_stop_unwinds_call_stack(self):
        trace = run_source(
            "      PROGRAM MAIN\n      CALL S\n      PRINT *, 'after'\n"
            "      END\n"
            "      SUBROUTINE S\n      STOP\n      END\n"
        )
        assert trace.output == []

    def test_fuel_exhaustion(self):
        with pytest.raises(InterpreterError):
            run_source(
                "      PROGRAM MAIN\n      X = 1\n"
                "      DO WHILE (X .GT. 0)\n      X = X + 1\n      ENDDO\n"
                "      END\n",
                fuel=1000,
            )


class TestCalls:
    def test_by_reference_writeback(self):
        trace = run_source(
            "      PROGRAM MAIN\n      N = 1\n      CALL SET(N)\n"
            "      PRINT *, N\n      END\n"
            "      SUBROUTINE SET(K)\n      K = 42\n      END\n"
        )
        assert trace.output == ["42"]

    def test_expression_actual_writeback_lost(self):
        trace = run_source(
            "      PROGRAM MAIN\n      N = 1\n      CALL SET(N + 0)\n"
            "      PRINT *, N\n      END\n"
            "      SUBROUTINE SET(K)\n      K = 42\n      END\n"
        )
        assert trace.output == ["1"]

    def test_globals_shared(self):
        trace = run_source(
            "      PROGRAM MAIN\n      COMMON /B/ G\n      CALL INIT\n"
            "      PRINT *, G\n      END\n"
            "      SUBROUTINE INIT\n      COMMON /B/ G\n      G = 13\n"
            "      END\n"
        )
        assert trace.output == ["13"]

    def test_function_result(self):
        trace = run_source(
            "      PROGRAM MAIN\n      PRINT *, TWICE(21)\n      END\n"
            "      INTEGER FUNCTION TWICE(Q)\n      TWICE = Q * 2\n      END\n"
        )
        assert trace.output == ["42"]

    def test_recursion(self):
        trace = run_source(
            "      PROGRAM MAIN\n      PRINT *, FACT(5)\n      END\n"
            "      INTEGER FUNCTION FACT(N)\n"
            "      IF (N .LE. 1) THEN\n      FACT = 1\n"
            "      ELSE\n      FACT = N * FACT(N - 1)\n      ENDIF\n"
            "      END\n"
        )
        assert trace.output == ["120"]

    def test_array_passed_by_reference(self):
        trace = run_source(
            "      PROGRAM MAIN\n      INTEGER A(5)\n      A(2) = 7\n"
            "      CALL BUMP(A)\n      PRINT *, A(2)\n      END\n"
            "      SUBROUTINE BUMP(B)\n      INTEGER B(5)\n"
            "      B(2) = B(2) + 1\n      END\n"
        )
        assert trace.output == ["8"]

    def test_entry_snapshots_recorded(self):
        trace = run_source(
            "      PROGRAM MAIN\n      CALL S(3)\n      CALL S(4)\n      END\n"
            "      SUBROUTINE S(K)\n      X = K\n      END\n"
        )
        assert trace.invocations("s") == 2
        values = [
            next(v for var, v in snap.items() if var.name == "k")
            for snap in trace.entries["s"]
        ]
        assert values == [3, 4]

    def test_intrinsics(self):
        trace = run_source(
            "      PROGRAM MAIN\n"
            "      PRINT *, MOD(7, 3), MAX(2, 9), MIN(2, 9), IABS(-4)\n"
            "      END\n"
        )
        assert trace.output == ["1 9 2 4"]


class TestEntryHook:
    """The on_entry tracing hook the differential oracle relies on."""

    SOURCE = (
        "      PROGRAM MAIN\n"
        "      COMMON /B/ G\n"
        "      G = 5\n"
        "      CALL S(3)\n"
        "      CALL S(4)\n"
        "      END\n"
        "      SUBROUTINE S(K)\n"
        "      COMMON /B/ G\n"
        "      X = K + G\n"
        "      END\n"
    )

    def test_hook_called_per_invocation_with_bindings(self):
        calls = []

        def hook(name, snapshot):
            calls.append((name, {var.name: v for var, v in snapshot.items()}))

        run_source(self.SOURCE, on_entry=hook)
        names = [name for name, _ in calls]
        assert names == ["main", "s", "s"]
        s_first, s_second = calls[1][1], calls[2][1]
        assert s_first["k"] == 3 and s_second["k"] == 4
        assert s_first["g"] == 5 and s_second["g"] == 5

    def test_hook_receives_a_copy(self):
        """Mutating the hook's dict must not corrupt the trace."""

        def vandal(name, snapshot):
            snapshot.clear()

        trace = run_source(self.SOURCE, on_entry=vandal)
        assert trace.invocations("s") == 2
        assert all(trace.entries["s"]), "trace snapshots were clobbered"

    def test_no_hook_is_default(self):
        trace = run_source(self.SOURCE)
        assert trace.invocations("s") == 2

    def test_violations_match_by_name_across_lowerings(self):
        """constant_violations must work when the claims come from a
        *different* lowering of the same source (Variables have identity
        semantics, so matching is by name)."""
        from repro.testkit import lower

        trace = run_source(self.SOURCE)
        other = lower(self.SOURCE)  # independent lowering, fresh Variables
        formal = other.procedure("s").formals[0]
        assert trace.constant_violations("s", {formal: 3}) == [
            "s invocation 1: k was 4, analyzer claimed 3"
        ]
        assert trace.constant_violations("s", {formal: 99}) != []
