"""Instruction operand/def protocol tests."""

import pytest

from repro.frontend.source import UNKNOWN_LOCATION
from repro.ir.cfg import BasicBlock
from repro.ir.instructions import (
    ArrayLoad,
    ArrayStore,
    Assign,
    BinOp,
    Call,
    CallArg,
    CondBranch,
    Const,
    Def,
    Jump,
    Phi,
    Print,
    Read,
    Return,
    UnOp,
    Use,
)
from repro.ir.symbols import Variable, VarKind


def var(name, kind=VarKind.LOCAL, **kw):
    return Variable(name, kind, **kw)


class TestOperandProtocol:
    def test_assign_uses_and_defs(self):
        x, y = var("x"), var("y")
        instr = Assign(Def(x), Use(y))
        assert [u.var for u in instr.uses()] == [y]
        assert [d.var for d in instr.defs()] == [x]

    def test_binop_operands(self):
        x = var("x")
        instr = BinOp(Def(x), "+", Const(1), Use(var("y")))
        assert len(instr.operands()) == 2
        assert len(instr.uses()) == 1

    def test_invalid_binop_op_asserts(self):
        with pytest.raises(AssertionError):
            BinOp(Def(var("x")), "bogus", Const(1), Const(2))

    def test_replace_operand_binop(self):
        y = var("y")
        use = Use(y)
        instr = BinOp(Def(var("x")), "+", use, Const(1))
        instr.replace_operand(use, Const(9))
        assert instr.left == Const(9)

    def test_replace_operand_by_identity_not_equality(self):
        y = var("y")
        use1, use2 = Use(y), Use(y)
        instr = BinOp(Def(var("x")), "+", use1, use2)
        instr.replace_operand(use2, Const(5))
        assert instr.left is use1
        assert instr.right == Const(5)

    def test_array_store_replace(self):
        a = var("a", is_array=True)
        idx, value = Use(var("i")), Use(var("v"))
        instr = ArrayStore(a, [idx], value)
        instr.replace_operand(value, Const(2))
        assert instr.value == Const(2)
        instr.replace_operand(idx, Const(1))
        assert instr.indices == [Const(1)]

    def test_phi_replace(self):
        x = var("x")
        block = BasicBlock()
        use = Use(x)
        phi = Phi(Def(x), {block: use})
        phi.replace_operand(use, Const(3))
        assert phi.incoming[block] == Const(3)

    def test_print_mixed_items(self):
        instr = Print(["label", Use(var("x")), Const(2)])
        assert len(instr.operands()) == 2

    def test_read_defines_targets(self):
        instr = Read([Def(var("x")), Def(var("y"))])
        assert len(instr.defs()) == 2
        assert instr.uses() == []


class TestCallInstruction:
    def test_call_arg_requires_exactly_one_payload(self):
        with pytest.raises(AssertionError):
            CallArg()
        with pytest.raises(AssertionError):
            CallArg(value=Const(1), array=var("a", is_array=True))

    def test_bindable_var(self):
        local = var("x")
        temp = var("%t0", VarKind.TEMP)
        assert CallArg(value=Use(local)).bindable_var is local
        assert CallArg(value=Use(temp)).bindable_var is None
        assert CallArg(value=Const(3)).bindable_var is None

    def test_call_defs_include_may_define_and_result(self):
        g = var("g", VarKind.GLOBAL)
        result = Def(var("%t1", VarKind.TEMP))
        call = Call("f", [CallArg(value=Const(1))], result)
        call.may_define = [Def(g)]
        assert [d.var for d in call.defs()] == [g, result.var]

    def test_call_uses_include_entry_uses(self):
        g = var("g", VarKind.GLOBAL)
        call = Call("f", [CallArg(value=Use(var("x")))])
        call.entry_uses = [Use(g)]
        assert {u.var for u in call.uses()} == {g, call.args[0].value.var}

    def test_entry_use_lookup(self):
        g1, g2 = var("g1", VarKind.GLOBAL), var("g2", VarKind.GLOBAL)
        call = Call("f", [])
        call.entry_uses = [Use(g1), Use(g2)]
        assert call.entry_use_of(g2).var is g2
        assert call.entry_use_of(var("g3", VarKind.GLOBAL)) is None

    def test_replace_operand_targets_args_not_entry_uses(self):
        g = var("g", VarKind.GLOBAL)
        arg_use = Use(var("x"))
        call = Call("f", [CallArg(value=arg_use)])
        entry = Use(g)
        call.entry_uses = [entry]
        call.replace_operand(arg_use, Const(7))
        assert call.args[0].value == Const(7)
        call.replace_operand(entry, Const(8))
        assert call.entry_uses[0] is entry  # entry uses never rewritten


class TestReturn:
    def test_exit_uses_participate_in_uses(self):
        g = var("g", VarKind.GLOBAL)
        ret = Return(None)
        ret.exit_uses = [Use(g)]
        assert [u.var for u in ret.uses()] == [g]

    def test_exit_use_lookup(self):
        g = var("g", VarKind.GLOBAL)
        ret = Return(None)
        ret.exit_uses = [Use(g)]
        assert ret.exit_use_of(g) is ret.exit_uses[0]
        assert ret.exit_use_of(var("h", VarKind.GLOBAL)) is None

    def test_terminator_classification(self):
        block = BasicBlock()
        assert Return().is_terminator
        assert Jump(block).is_terminator
        assert CondBranch(Const(1), block, block).is_terminator
        assert not Assign(Def(var("x")), Const(1)).is_terminator


class TestConstSemantics:
    def test_const_equality(self):
        assert Const(3) == Const(3)
        assert Const(3) != Const(4)
        assert hash(Const(3)) == hash(Const(3))

    def test_ssa_name_property(self):
        x = var("x")
        use = Use(x)
        use.version = 4
        assert use.ssa_name == (x, 4)
