"""Lowering tests: AST -> CFG/IR semantics."""

import pytest

from repro.frontend.errors import SemanticError
from repro.ir.instructions import (
    ArrayLoad,
    ArrayStore,
    Assign,
    BinOp,
    Call,
    CondBranch,
    Const,
    Halt,
    Jump,
    Print,
    Read,
    Return,
    UnOp,
    Use,
)
from repro.ir.symbols import VarKind

from tests.conftest import lower


def instructions_of(program, name):
    return list(program.procedure(name).cfg.instructions())


def single_proc(body, decls="", header="      PROGRAM MAIN"):
    text = f"{header}\n{decls}{body}\n      END\n"
    return lower(text)


class TestBasicLowering:
    def test_constant_assignment(self):
        program = single_proc("      X = 5")
        instrs = instructions_of(program, "main")
        assigns = [i for i in instrs if isinstance(i, Assign)]
        assert any(
            isinstance(a.source, Const) and a.source.value == 5 for a in assigns
        )

    def test_binop_fused_into_target(self):
        program = single_proc("      X = A + B")
        instrs = instructions_of(program, "main")
        binops = [i for i in instrs if isinstance(i, BinOp)]
        assert len(binops) == 1
        assert binops[0].target.var.name == "x"

    def test_nested_expression_uses_temps(self):
        program = single_proc("      X = (A + B) * C")
        instrs = instructions_of(program, "main")
        binops = [i for i in instrs if isinstance(i, BinOp)]
        assert len(binops) == 2
        assert binops[0].target.var.is_temp

    def test_main_ends_with_halt(self):
        program = single_proc("      X = 1")
        terminators = [
            b.terminator for b in program.procedure("main").cfg.blocks
        ]
        assert any(isinstance(t, Halt) for t in terminators)

    def test_subroutine_ends_with_return(self):
        program = lower(
            "      SUBROUTINE S\n      X = 1\n      END\n"
        )
        terminators = [b.terminator for b in program.procedure("s").cfg.blocks]
        assert any(isinstance(t, Return) for t in terminators)

    def test_function_returns_result_var(self):
        program = lower(
            "      INTEGER FUNCTION F(Q)\n      F = Q * 2\n      RETURN\n      END\n"
        )
        f = program.procedure("f")
        assert f.result_var is not None
        returns = [
            i for i in f.cfg.instructions() if isinstance(i, Return)
        ]
        assert all(
            isinstance(r.value, Use) and r.value.var is f.result_var
            for r in returns
        )

    def test_from_source_marks(self):
        program = single_proc("      X = A + 1")
        binop = [
            i for i in instructions_of(program, "main") if isinstance(i, BinOp)
        ][0]
        assert isinstance(binop.left, Use) and binop.left.from_source


class TestParameters:
    def test_parameter_folds_to_literal(self):
        program = single_proc(
            "      X = K + 1", decls="      PARAMETER (K = 10)\n"
        )
        binop = [
            i for i in instructions_of(program, "main") if isinstance(i, BinOp)
        ][0]
        assert isinstance(binop.left, Const) and binop.left.value == 10

    def test_parameter_arithmetic(self):
        program = single_proc(
            "      X = L", decls="      PARAMETER (K = 6, L = K * 7)\n"
        )
        assign = [
            i for i in instructions_of(program, "main") if isinstance(i, Assign)
        ][0]
        assert assign.source.value == 42

    def test_parameter_division_truncates_toward_zero(self):
        program = single_proc(
            "      X = K", decls="      PARAMETER (K = -7 / 2)\n"
        )
        assign = [
            i for i in instructions_of(program, "main") if isinstance(i, Assign)
        ][0]
        assert assign.source.value == -3

    def test_assignment_to_parameter_rejected(self):
        with pytest.raises(SemanticError):
            single_proc("      K = 1", decls="      PARAMETER (K = 10)\n")

    def test_nonconstant_parameter_rejected(self):
        with pytest.raises(SemanticError):
            single_proc("      X = 1", decls="      PARAMETER (K = X)\n")


class TestControlFlow:
    def test_if_creates_branch(self):
        program = single_proc(
            "      IF (X .GT. 0) THEN\n      Y = 1\n      ENDIF"
        )
        instrs = instructions_of(program, "main")
        assert any(isinstance(i, CondBranch) for i in instrs)

    def test_do_loop_structure(self):
        program = single_proc("      DO I = 1, 10\n      X = I\n      ENDDO")
        cfg = program.procedure("main").cfg
        branches = [
            i for i in cfg.instructions() if isinstance(i, CondBranch)
        ]
        assert len(branches) == 1
        # Positive step: the loop test is 'le'.
        binops = [i for i in cfg.instructions() if isinstance(i, BinOp)]
        assert any(b.op == "le" for b in binops)

    def test_do_negative_step_uses_ge(self):
        program = single_proc("      DO I = 10, 1, -2\n      X = I\n      ENDDO")
        binops = [
            i
            for i in instructions_of(program, "main")
            if isinstance(i, BinOp)
        ]
        assert any(b.op == "ge" for b in binops)

    def test_do_nonliteral_step_rejected(self):
        with pytest.raises(SemanticError):
            single_proc("      DO I = 1, 10, N\n      X = I\n      ENDDO")

    def test_do_zero_step_rejected(self):
        with pytest.raises(SemanticError):
            single_proc("      DO I = 1, 10, 0\n      X = I\n      ENDDO")

    def test_goto_targets_label_block(self):
        program = single_proc("      GOTO 10\n      X = 1\n 10   CONTINUE")
        cfg = program.procedure("main").cfg
        # The X = 1 statement is unreachable and removed by cleanup.
        assigns = [i for i in cfg.instructions() if isinstance(i, Assign)]
        assert not assigns

    def test_unknown_goto_label_rejected(self):
        with pytest.raises(SemanticError):
            single_proc("      GOTO 99")

    def test_duplicate_label_rejected(self):
        with pytest.raises(SemanticError):
            single_proc(" 10   X = 1\n 10   Y = 2")

    def test_stop_lowers_to_halt_in_subroutine(self):
        program = lower("      SUBROUTINE S\n      STOP\n      END\n")
        instrs = instructions_of(program, "s")
        assert any(isinstance(i, Halt) for i in instrs)

    def test_return_in_main_is_halt(self):
        program = single_proc("      RETURN")
        instrs = instructions_of(program, "main")
        assert any(isinstance(i, Halt) for i in instrs)


class TestArrays:
    def test_array_load(self):
        program = single_proc(
            "      X = A(3)", decls="      INTEGER A(10)\n"
        )
        instrs = instructions_of(program, "main")
        assert any(isinstance(i, ArrayLoad) for i in instrs)

    def test_array_store(self):
        program = single_proc(
            "      A(3) = 7", decls="      INTEGER A(10)\n"
        )
        instrs = instructions_of(program, "main")
        assert any(isinstance(i, ArrayStore) for i in instrs)

    def test_undeclared_array_rejected(self):
        # B(3) parses as a function call; calling an undefined function
        # is a semantic error.
        with pytest.raises(SemanticError):
            single_proc("      X = B(3)")

    def test_scalar_where_array_expected(self):
        with pytest.raises(SemanticError):
            single_proc("      X = A", decls="      INTEGER A(10)\n")


class TestCalls:
    TWO_PROC = (
        "      PROGRAM MAIN\n      CALL S({args})\n      END\n"
        "      SUBROUTINE S(A)\n      INTEGER A\n      X = A\n      END\n"
    )

    def test_scalar_var_actual_is_bindable(self):
        program = lower(self.TWO_PROC.format(args="N"))
        call = program.procedure("main").call_sites()[0]
        assert call.args[0].bindable_var is not None

    def test_literal_actual_not_bindable(self):
        program = lower(self.TWO_PROC.format(args="3"))
        call = program.procedure("main").call_sites()[0]
        assert call.args[0].bindable_var is None

    def test_expression_actual_uses_temp(self):
        program = lower(self.TWO_PROC.format(args="N + 1"))
        call = program.procedure("main").call_sites()[0]
        assert call.args[0].bindable_var is None  # temp: not modifiable

    def test_undefined_callee_rejected(self):
        with pytest.raises(SemanticError):
            lower("      PROGRAM MAIN\n      CALL NOPE\n      END\n")

    def test_wrong_arity_rejected(self):
        with pytest.raises(SemanticError):
            lower(self.TWO_PROC.format(args="1, 2"))

    def test_array_formal_needs_array_actual(self):
        with pytest.raises(SemanticError):
            lower(
                "      PROGRAM MAIN\n      CALL S(3)\n      END\n"
                "      SUBROUTINE S(A)\n      INTEGER A(10)\n      A(1) = 0\n"
                "      END\n"
            )

    def test_function_used_as_subroutine_rejected(self):
        with pytest.raises(SemanticError):
            lower(
                "      PROGRAM MAIN\n      CALL F(1)\n      END\n"
                "      INTEGER FUNCTION F(Q)\n      F = Q\n      END\n"
            )

    def test_subroutine_used_as_function_rejected(self):
        with pytest.raises(SemanticError):
            lower(
                "      PROGRAM MAIN\n      X = S(1)\n      END\n"
                "      SUBROUTINE S(A)\n      X = A\n      END\n"
            )

    def test_function_call_in_expression(self):
        program = lower(
            "      PROGRAM MAIN\n      X = F(2) + 1\n      END\n"
            "      INTEGER FUNCTION F(Q)\n      F = Q\n      END\n"
        )
        calls = program.procedure("main").call_sites()
        assert len(calls) == 1
        assert calls[0].result is not None

    def test_duplicate_unit_names_rejected(self):
        with pytest.raises(SemanticError):
            lower(
                "      SUBROUTINE S\n      X = 1\n      END\n"
                "      SUBROUTINE S\n      X = 2\n      END\n"
            )


class TestIntrinsics:
    @pytest.mark.parametrize(
        "expr,op",
        [("MOD(A, 3)", "mod"), ("MAX(A, B)", "max"), ("MIN(A, B)", "min")],
    )
    def test_binary_intrinsics(self, expr, op):
        program = single_proc(f"      X = {expr}")
        binops = [
            i for i in instructions_of(program, "main") if isinstance(i, BinOp)
        ]
        assert any(b.op == op for b in binops)

    def test_iabs(self):
        program = single_proc("      X = IABS(A)")
        unops = [
            i for i in instructions_of(program, "main") if isinstance(i, UnOp)
        ]
        assert any(u.op == "abs" for u in unops)

    def test_intrinsic_wrong_arity(self):
        with pytest.raises(SemanticError):
            single_proc("      X = MOD(A)")

    def test_user_procedure_shadows_intrinsic(self):
        program = lower(
            "      PROGRAM MAIN\n      X = MOD(3, 2)\n      END\n"
            "      INTEGER FUNCTION MOD(A, B)\n      MOD = A\n      END\n"
        )
        calls = program.procedure("main").call_sites()
        assert len(calls) == 1  # real call, not folded to an operator


class TestCommons:
    def test_common_variables_shared(self):
        program = lower(
            "      PROGRAM MAIN\n      COMMON /B/ G\n      G = 1\n      END\n"
            "      SUBROUTINE S\n      COMMON /B/ G\n      X = G\n      END\n"
        )
        main_g = program.procedure("main").symbols.lookup("g")
        s_g = program.procedure("s").symbols.lookup("g")
        assert main_g is s_g
        assert main_g.kind is VarKind.GLOBAL

    def test_mismatched_common_rejected(self):
        with pytest.raises(SemanticError):
            lower(
                "      PROGRAM MAIN\n      COMMON /B/ G, H\n      G = 1\n"
                "      END\n"
                "      SUBROUTINE S\n      COMMON /B/ H, G\n      X = G\n"
                "      END\n"
            )

    def test_common_conflicts_with_local_rejected(self):
        with pytest.raises(SemanticError):
            lower(
                "      PROGRAM MAIN\n      INTEGER G\n      COMMON /B/ G\n"
                "      G = 1\n      END\n"
            )


class TestReadPrint:
    def test_read_defines_targets(self):
        program = single_proc("      READ *, X, Y")
        reads = [
            i for i in instructions_of(program, "main") if isinstance(i, Read)
        ]
        assert len(reads) == 1
        assert len(reads[0].targets) == 2

    def test_read_into_array_element(self):
        program = single_proc(
            "      READ *, A(2)", decls="      INTEGER A(5)\n"
        )
        instrs = instructions_of(program, "main")
        assert any(isinstance(i, Read) for i in instrs)
        assert any(isinstance(i, ArrayStore) for i in instrs)

    def test_print_items(self):
        program = single_proc("      PRINT *, 'x', X")
        prints = [
            i for i in instructions_of(program, "main") if isinstance(i, Print)
        ]
        assert prints[0].items[0] == "x"
