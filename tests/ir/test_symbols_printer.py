"""Symbol table and printer tests."""

from repro.ir.instructions import Assign, BinOp, Const, Def, Use
from repro.ir.printer import format_instruction, format_procedure, format_program
from repro.ir.symbols import SymbolTable, Variable, VarKind

from tests.conftest import TRI_PROGRAM, lower


class TestSymbolTable:
    def test_declare_and_lookup(self):
        table = SymbolTable("p")
        v = table.declare(Variable("x", VarKind.LOCAL))
        assert table.lookup("x") is v
        assert "x" in table
        assert table.lookup("y") is None

    def test_new_temp_unique(self):
        table = SymbolTable("p")
        t1, t2 = table.new_temp(), table.new_temp()
        assert t1 is not t2
        assert t1.name != t2.name
        assert t1.is_temp

    def test_formals_and_globals_filters(self):
        table = SymbolTable("p")
        f = table.declare(Variable("a", VarKind.FORMAL))
        g = table.declare(Variable("g", VarKind.GLOBAL))
        table.declare(Variable("l", VarKind.LOCAL))
        assert table.formals() == [f]
        assert table.globals() == [g]

    def test_variable_identity_hash(self):
        a = Variable("x", VarKind.LOCAL)
        b = Variable("x", VarKind.LOCAL)
        assert a != b
        assert len({a, b}) == 2

    def test_scalar_array_flags(self):
        arr = Variable("a", VarKind.LOCAL, is_array=True, dims=(10,))
        assert arr.is_array and not arr.is_scalar
        assert Variable("s", VarKind.LOCAL).is_scalar


class TestPrinter:
    def test_format_assign(self):
        x = Variable("x", VarKind.LOCAL)
        text = format_instruction(Assign(Def(x), Const(5)))
        assert text == "x = 5"

    def test_format_versioned(self):
        x = Variable("x", VarKind.LOCAL)
        d = Def(x)
        d.version = 2
        u = Use(x)
        u.version = 1
        text = format_instruction(BinOp(d, "+", u, Const(1)))
        assert text == "x.2 = x.1 + 1"

    def test_format_procedure_includes_blocks(self):
        program = lower(TRI_PROGRAM)
        text = format_procedure(program.procedure("foo"))
        assert "subroutine foo(x, y)" in text
        assert "entry:" in text
        assert "call bar" in text

    def test_format_program_has_all_units(self):
        program = lower(TRI_PROGRAM)
        text = format_program(program)
        for name in ("main", "foo", "bar"):
            assert name in text

    def test_every_instruction_formats(self):
        program = lower(TRI_PROGRAM)
        for procedure in program:
            for instruction in procedure.cfg.instructions():
                line = format_instruction(instruction)
                assert isinstance(line, str) and line
