"""Structural IR/SSA verifier tests: hand-corrupt a lowered program and
check that :func:`verify_program` pinpoints the procedure and block."""

import pytest

from repro.analysis.ssa import construct_ssa
from repro.config import AnalysisConfig
from repro.frontend.parser import parse_source
from repro.frontend.source import SourceFile
from repro.ipcp.driver import analyze_program, prepare_program
from repro.ir.cfg import BasicBlock
from repro.ir.instructions import Assign, Const, Def, Jump, Phi, Use
from repro.ir.lowering import lower_module
from repro.ir.symbols import Variable, VarKind
from repro.ir.verify import VerificationError, verify_procedure, verify_program

SOURCE = (
    "      PROGRAM MAIN\n"
    "      N = 1\n"
    "      IF (N .GT. 0) THEN\n"
    "      N = N + 1\n"
    "      ELSE\n"
    "      N = N - 1\n"
    "      ENDIF\n"
    "      CALL S(N)\n"
    "      END\n"
    "      SUBROUTINE S(K)\n"
    "      A = K + 2\n"
    "      RETURN\n"
    "      END\n"
)


def lowered():
    return lower_module(parse_source(SOURCE), SourceFile("v.f", SOURCE))


def ssa_program():
    program = lowered()
    prepare_program(program, AnalysisConfig())
    return program


def find_phi(program):
    for procedure in program:
        for block in procedure.cfg.blocks:
            for phi in block.phis():
                return procedure, block, phi
    raise AssertionError("expected at least one phi in the test program")


class TestCleanPrograms:
    def test_lowered_program_verifies_pre_ssa(self):
        verify_program(lowered(), ssa=False)

    def test_ssa_program_verifies(self):
        verify_program(ssa_program(), ssa=True)

    def test_analyzed_program_verifies(self):
        result = analyze_program(lowered(), AnalysisConfig())
        verify_program(result.program, ssa=True)

    def test_complete_propagation_output_verifies(self):
        result = analyze_program(
            lowered(), AnalysisConfig.complete_propagation()
        )
        verify_program(result.program, ssa=True)


class TestCfgCorruption:
    def test_dangling_successor_edge_is_pinpointed(self):
        program = ssa_program()
        main = program.main
        orphan = BasicBlock("orphan")
        source_block = None
        for block in main.cfg.blocks:
            term = block.terminator
            if isinstance(term, Jump):
                term.target = orphan
                source_block = block
                break
        assert source_block is not None
        with pytest.raises(VerificationError) as exc:
            verify_program(program, ssa=True, stage="test corruption")
        message = str(exc.value)
        assert "after test corruption" in message
        assert main.name in message
        assert source_block.name in message
        assert "not in the CFG" in message

    def test_duplicate_block_detected(self):
        program = ssa_program()
        main = program.main
        main.cfg.blocks.append(main.cfg.blocks[-1])
        issues = verify_procedure(main, ssa=False)
        assert any("duplicate block" in issue for issue in issues)

    def test_unterminated_reachable_block_detected(self):
        program = ssa_program()
        main = program.main
        victim = None
        for block in main.cfg.reachable_blocks():
            if block.is_terminated:
                victim = block
                block.instructions.pop()
                break
        issues = verify_procedure(main, ssa=False)
        assert any(
            "no terminator" in issue and victim.name in issue
            for issue in issues
        )


class TestPhiCorruption:
    def test_missing_phi_operand_names_block_and_predecessor(self):
        program = ssa_program()
        procedure, block, phi = find_phi(program)
        removed = next(iter(phi.incoming))
        del phi.incoming[removed]
        with pytest.raises(VerificationError) as exc:
            verify_program(program, ssa=True)
        message = str(exc.value)
        assert procedure.name in message
        assert block.name in message
        assert removed.name in message
        assert "missing the incoming value" in message

    def test_extra_phi_operand_detected(self):
        program = ssa_program()
        procedure, block, phi = find_phi(program)
        stranger = BasicBlock("stranger")
        phi.incoming[stranger] = Const(0)
        issues = verify_procedure(procedure, ssa=False)
        assert any(
            "not a predecessor" in issue and "stranger" in issue
            for issue in issues
        )

    def test_phi_after_non_phi_detected(self):
        program = ssa_program()
        procedure, block, phi = find_phi(program)
        block.instructions.remove(phi)
        block.instructions.insert(1, phi)
        issues = verify_procedure(procedure, ssa=False)
        assert any("phi after a non-phi" in issue for issue in issues)


class TestSsaCorruption:
    def test_double_assignment_detected(self):
        program = ssa_program()
        main = program.main
        defs = []
        for block in main.cfg.blocks:
            for instruction in block.instructions:
                for definition in instruction.defs():
                    defs.append(definition)
        pairs = {}
        clobbered = None
        for definition in defs:
            key = definition.var
            if key in pairs:
                definition.version = pairs[key]
                clobbered = definition
                break
            pairs[key] = definition.version
        assert clobbered is not None, "need two defs of one variable"
        issues = verify_procedure(main, ssa=True)
        assert any("assigned more than once" in issue for issue in issues)

    def test_use_of_undefined_version_detected(self):
        program = ssa_program()
        main = program.main
        corrupted = None
        for block in main.cfg.reachable_blocks():
            for instruction in block.instructions:
                if isinstance(instruction, Phi):
                    continue
                for use in instruction.uses():
                    if use.version:
                        use.version = 999
                        corrupted = use
                        break
                if corrupted:
                    break
            if corrupted:
                break
        assert corrupted is not None
        issues = verify_procedure(main, ssa=True)
        assert any(
            "never defined" in issue and f"{corrupted.var.name}.999" in issue
            for issue in issues
        )

    def test_unversioned_def_detected_in_ssa_mode(self):
        program = ssa_program()
        main = program.main
        for block in main.cfg.blocks:
            for instruction in block.instructions:
                for definition in instruction.defs():
                    definition.version = None
                    issues = verify_procedure(main, ssa=True)
                    assert any(
                        "unversioned def" in issue for issue in issues
                    )
                    return
        raise AssertionError("no defs found")

    def test_use_before_def_in_same_block_detected(self):
        program = ssa_program()
        main = program.main
        for block in main.cfg.reachable_blocks():
            movable = None
            for position, instruction in enumerate(block.instructions):
                if isinstance(instruction, Phi) or instruction.is_terminator:
                    continue
                defining = {
                    (d.var, d.version)
                    for earlier in block.instructions[:position]
                    for d in earlier.defs()
                }
                if any(
                    (u.var, u.version) in defining for u in instruction.uses()
                ):
                    movable = instruction
                    break
            if movable is not None:
                insert_at = len(list(block.phis()))
                block.instructions.remove(movable)
                block.instructions.insert(insert_at, movable)
                issues = verify_procedure(main, ssa=True)
                assert any("before its definition" in issue for issue in issues)
                return
        raise AssertionError("no same-block def/use pair in this program")


class TestSymbolCorruption:
    def test_shadowed_symbol_table_entry_detected(self):
        program = ssa_program()
        sub = program.procedure("s")
        impostor = Variable("k", VarKind.LOCAL)
        sub.symbols.declare(impostor)
        issues = verify_procedure(sub, ssa=False)
        assert any(
            "does not resolve to itself" in issue and "'k'" in issue
            for issue in issues
        )

    def test_error_lists_every_issue(self):
        program = ssa_program()
        sub = program.procedure("s")
        sub.symbols.declare(Variable("k", VarKind.LOCAL))
        sub.symbols.declare(Variable("a", VarKind.LOCAL))
        with pytest.raises(VerificationError) as exc:
            verify_program(program, ssa=True)
        assert len(exc.value.issues) >= 2
