"""Fault isolation, graceful degradation, and analysis budgets.

The contract under test: one broken procedure (or one failing/oversized
jump function) must never take down the whole analysis — the affected
component is demoted down the jump-function lattice, the demotion is
recorded in the run's :class:`ResilienceReport`, and every *other*
result is exactly what a healthy run produces.
"""

import pytest

from repro.config import AnalysisBudget, AnalysisConfig, BudgetExceeded
from repro.diagnostics import DiagnosticEngine
from repro.frontend.errors import FrontendError
from repro.ipcp.driver import (
    analyze_file,
    analyze_file_resilient,
    analyze_source,
    analyze_source_resilient,
)

#: MAIN and a healthy callee plus one procedure with two syntax errors.
BROKEN_SUITE = (
    "      PROGRAM MAIN\n"
    "      N = 6\n"
    "      CALL S(N)\n"
    "      CALL B(N)\n"
    "      END\n"
    "      SUBROUTINE S(K)\n"
    "      A = K + 1\n"
    "      RETURN\n"
    "      END\n"
    "      SUBROUTINE B(K)\n"
    "      A = + * K\n"
    "      B = )) 3\n"
    "      RETURN\n"
    "      END\n"
)

#: Forwarded-formal chain: J^k at the inner call is the two-term
#: polynomial x + y, J^j the literal 5.
POLY_CHAIN = (
    "      PROGRAM MAIN\n"
    "      CALL A(3, 4)\n"
    "      END\n"
    "      SUBROUTINE A(X, Y)\n"
    "      CALL S(X + Y, 5)\n"
    "      END\n"
    "      SUBROUTINE S(K, J)\n"
    "      B = K + J\n"
    "      RETURN\n"
    "      END\n"
)


def pairs(result):
    out = {}
    for procedure in result.program:
        for var, value in result.constants.constants_of(procedure.name).items():
            out[(procedure.name, var.name)] = value
    return out


class TestBrokenProcedureIsolation:
    def test_other_procedures_still_get_constants(self):
        result, diags = analyze_source_resilient(BROKEN_SUITE)
        assert result is not None
        assert diags.error_count >= 2, diags.format()
        constants = pairs(result)
        assert constants[("s", "k")] == 6
        # Even the broken unit's *entry* is analyzable: the stub still
        # receives k=6 from its (healthy) call site.
        assert constants[("b", "k")] == 6

    def test_diagnostics_name_the_broken_unit(self):
        _, diags = analyze_source_resilient(BROKEN_SUITE)
        rendered = diags.format()
        assert "E002" in rendered
        assert ":11:" in rendered and ":12:" in rendered
        assert "analyzed as an opaque stub" in rendered

    def test_healthy_source_has_no_diagnostics(self):
        result, diags = analyze_source_resilient(POLY_CHAIN)
        assert result is not None
        assert len(diags) == 0
        assert result.resilience.ok

    def test_results_match_strict_run_on_healthy_source(self):
        strict = analyze_source(POLY_CHAIN)
        resilient, _ = analyze_source_resilient(POLY_CHAIN)
        assert pairs(strict) == pairs(resilient)
        assert strict.substituted_constants == resilient.substituted_constants

    def test_nothing_parseable_returns_none(self):
        result, diags = analyze_source_resilient("      $$$$\n")
        assert result is None
        assert diags.has_errors

    def test_strict_entry_point_still_raises(self):
        with pytest.raises(FrontendError):
            analyze_source(BROKEN_SUITE)


class TestJumpFunctionDemotion:
    def test_construction_fault_demotes_single_site(self, monkeypatch):
        baseline = analyze_source(POLY_CHAIN)
        assert pairs(baseline)[("s", "k")] == 7

        import repro.ipcp.jump_functions as jf

        original = jf.expr_to_polynomial

        def exploding(expr):
            polynomial = original(expr)
            if polynomial is not None and len(polynomial.terms) > 1:
                raise RuntimeError("injected construction fault")
            return polynomial

        monkeypatch.setattr(jf, "expr_to_polynomial", exploding)
        result, _ = analyze_source_resilient(POLY_CHAIN)

        demotions = list(result.resilience)
        assert [d.component for d in demotions] == ["jump_function"]
        assert "call s" in demotions[0].site and "/ k" in demotions[0].site
        assert demotions[0].from_kind == "polynomial"
        assert "injected construction fault" in demotions[0].reason

        degraded = pairs(result)
        expected = dict(pairs(baseline))
        del expected[("s", "k")]  # the demoted site loses exactly this pair
        assert degraded == expected

    def test_fault_isolation_off_propagates(self, monkeypatch):
        import repro.ipcp.jump_functions as jf

        def exploding(expr):
            raise RuntimeError("injected construction fault")

        monkeypatch.setattr(jf, "expr_to_polynomial", exploding)
        config = AnalysisConfig(fault_isolation=False)
        with pytest.raises(RuntimeError, match="injected"):
            analyze_source_resilient(POLY_CHAIN, config)

    def test_polynomial_term_budget_demotes(self):
        config = AnalysisConfig(budget=AnalysisBudget(polynomial_terms=1))
        result, _ = analyze_source_resilient(POLY_CHAIN, config)
        demotions = list(result.resilience)
        assert len(demotions) == 1
        assert demotions[0].component == "jump_function"
        assert demotions[0].to_kind == "pass_through"
        assert "polynomial size" in demotions[0].reason
        assert pairs(result)[("s", "j")] == 5  # untouched site keeps its value

    def test_polynomial_degree_budget_demotes(self):
        source = POLY_CHAIN.replace("X + Y", "X * X")
        config = AnalysisConfig(budget=AnalysisBudget(polynomial_degree=1))
        result, _ = analyze_source_resilient(source, config)
        assert any(
            "polynomial degree" in d.reason for d in result.resilience
        )

    def test_demotion_is_deterministic(self):
        config = AnalysisConfig(budget=AnalysisBudget(polynomial_terms=1))
        first, _ = analyze_source_resilient(POLY_CHAIN, config)
        second, _ = analyze_source_resilient(POLY_CHAIN, config)
        assert [d.render() for d in first.resilience] == [
            d.render() for d in second.resilience
        ]
        assert pairs(first) == pairs(second)


class TestAnalysisBudgets:
    def test_solver_fuel_bottoms_out_val(self):
        config = AnalysisConfig(budget=AnalysisBudget(solver_visits=0))
        result, _ = analyze_source_resilient(POLY_CHAIN, config)
        assert pairs(result) == {}
        assert result.resilience.count("solver") == 1

    def test_solver_fuel_sufficient_is_silent(self):
        config = AnalysisConfig(budget=AnalysisBudget(solver_visits=10_000))
        result, _ = analyze_source_resilient(POLY_CHAIN, config)
        assert result.resilience.count("solver") == 0
        assert pairs(result) == pairs(analyze_source(POLY_CHAIN))

    def test_sccp_fuel_skips_substitution_per_procedure(self):
        config = AnalysisConfig(budget=AnalysisBudget(sccp_visits=0))
        result, _ = analyze_source_resilient(POLY_CHAIN, config)
        assert result.substituted_constants == 0
        assert result.resilience.count("substitution") == len(
            list(result.program)
        )

    def test_sccp_fuel_raises_without_resilience(self):
        from repro.ipcp.driver import prepare_program
        from repro.ipcp.substitution import measure_substitution

        strict = analyze_source(POLY_CHAIN)
        with pytest.raises(BudgetExceeded):
            measure_substitution(
                strict.program,
                strict.constants,
                budget=AnalysisBudget(sccp_visits=0),
            )

    def test_gsa_round_budget_records_demotion(self):
        config = AnalysisConfig(
            gsa_refinement=True, budget=AnalysisBudget(gsa_rounds=0)
        )
        result, _ = analyze_source_resilient(POLY_CHAIN, config)
        # Zero rounds: refinement returns the unrefined result untouched.
        assert result.resilience.count("gsa_refinement") == 0
        assert pairs(result) == pairs(analyze_source(POLY_CHAIN))

    def test_dce_round_budget_terminates_complete_propagation(self):
        config = AnalysisConfig(
            complete=True, budget=AnalysisBudget(dce_rounds=0)
        )
        result, _ = analyze_source_resilient(POLY_CHAIN, config)
        assert result.dce_rounds == 0
        assert pairs(result) == pairs(analyze_source(POLY_CHAIN))

    def test_tight_budget_terminates_and_stays_sound(self):
        """The acceptance check: a starved pipeline still terminates and
        finds a subset of the full run's constant pairs."""
        config = AnalysisConfig(budget=AnalysisBudget.tight())
        full = analyze_source(POLY_CHAIN)
        starved, _ = analyze_source_resilient(POLY_CHAIN, config)
        full_pairs = pairs(full)
        for key, value in pairs(starved).items():
            assert full_pairs[key] == value


class TestFileEntryPoints:
    def test_missing_file_raises_located_frontend_error(self, tmp_path):
        missing = str(tmp_path / "nope.f")
        with pytest.raises(FrontendError) as exc:
            analyze_file(missing)
        assert exc.value.location is not None
        assert exc.value.location.filename == missing
        assert "cannot read" in exc.value.message

    def test_undecodable_file_raises_located_frontend_error(self, tmp_path):
        path = tmp_path / "latin.f"
        path.write_bytes(b"      PROGRAM MAIN\n      \xff\xfe\n      END\n")
        with pytest.raises(FrontendError) as exc:
            analyze_file(str(path))
        assert "cannot decode" in exc.value.message

    def test_resilient_file_entry_reports_io_as_diagnostic(self, tmp_path):
        missing = str(tmp_path / "nope.f")
        result, diags = analyze_file_resilient(missing)
        assert result is None
        assert diags.has_errors
        assert "E004" in diags.format()

    def test_resilient_file_entry_analyzes_good_file(self, tmp_path):
        path = tmp_path / "good.f"
        path.write_text(POLY_CHAIN)
        result, diags = analyze_file_resilient(str(path))
        assert result is not None
        assert len(diags) == 0
        assert result.substituted_constants > 0


class TestDiagnosticEngine:
    def test_error_cap_suppresses_but_counts(self):
        engine = DiagnosticEngine(max_errors=3)
        from repro.diagnostics import E_PARSE

        for i in range(10):
            engine.error(E_PARSE, f"problem {i}")
        assert engine.error_count == 10
        assert len(engine.errors()) == 3
        assert "7 further error(s) suppressed" in engine.format()

    def test_engine_is_always_truthy(self):
        engine = DiagnosticEngine()
        assert engine  # `engine or default` must never drop the engine
        assert len(engine) == 0


class TestCliExitCodes:
    def test_clean_analysis_exits_zero(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "ok.f"
        path.write_text(POLY_CHAIN)
        assert main(["analyze", str(path)]) == 0
        assert "CONSTANTS(s)" in capsys.readouterr().out

    def test_diagnostics_exit_one_but_still_report(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "broken.f"
        path.write_text(BROKEN_SUITE)
        assert main(["analyze", str(path)]) == 1
        captured = capsys.readouterr()
        assert "E002" in captured.err
        assert "CONSTANTS(s)" in captured.out  # analysis still ran

    def test_missing_file_exits_one(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["analyze", str(tmp_path / "nope.f")]) == 1
        assert "error" in capsys.readouterr().err

    def test_strict_flag_fails_fast_on_diagnostics(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "broken.f"
        path.write_text(BROKEN_SUITE)
        assert main(["analyze", str(path), "--strict"]) == 1
        captured = capsys.readouterr()
        assert "CONSTANTS" not in captured.out  # no recovery under strict

    def test_strict_flag_turns_demotion_into_failure(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "poly.f"
        path.write_text(POLY_CHAIN)
        assert (
            main(["analyze", str(path), "--strict", "--max-poly-terms", "1"])
            == 2
        )
        assert "degraded components" in capsys.readouterr().err

    def test_budget_flags_reach_the_pipeline(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "poly.f"
        path.write_text(POLY_CHAIN)
        assert main(["analyze", str(path), "--solver-fuel", "0"]) == 0
        captured = capsys.readouterr()
        assert "no interprocedural constants" in captured.out
        assert "degraded components" in captured.err

    def test_verify_ir_flag_accepted(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "ok.f"
        path.write_text(POLY_CHAIN)
        assert main(["analyze", str(path), "--verify-ir"]) == 0


class TestVerifierIntegration:
    def test_verify_ir_config_runs_clean_on_pipeline(self):
        config = AnalysisConfig(verify_ir=True, complete=True)
        result, _ = analyze_source_resilient(POLY_CHAIN, config)
        assert result is not None

    def test_verify_ir_runs_clean_on_stubbed_program(self):
        config = AnalysisConfig(verify_ir=True)
        result, diags = analyze_source_resilient(BROKEN_SUITE, config)
        assert result is not None
        assert diags.has_errors

    def test_verify_ir_runs_clean_after_cloning(self):
        from repro.frontend.parser import parse_source
        from repro.frontend.source import SourceFile
        from repro.ipcp.cloning import clone_for_constants
        from repro.ir.lowering import lower_module

        source = (
            "      PROGRAM MAIN\n"
            "      CALL C(4)\n      CALL C(8)\n      END\n"
            "      SUBROUTINE C(S)\n      A = S + 1\n      END\n"
        )
        program = lower_module(parse_source(source), SourceFile("c.f", source))
        report = clone_for_constants(program, AnalysisConfig(verify_ir=True))
        assert report.clones
