"""Polynomial engine tests, including hypothesis algebra properties."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.expr import ConstExpr, EntryExpr, UnknownExpr, make_binop, make_unop
from repro.poly.polynomial import Polynomial, expr_to_polynomial
from repro.ir.symbols import Variable, VarKind


X = Variable("x", VarKind.FORMAL)
Y = Variable("y", VarKind.FORMAL)
Z = Variable("z", VarKind.GLOBAL)

px = Polynomial.variable(X)
py = Polynomial.variable(Y)


def poly_const(value):
    return Polynomial.constant(value)


class TestConstruction:
    def test_zero(self):
        assert Polynomial().is_zero()
        assert poly_const(0).is_zero()

    def test_constant_value(self):
        assert poly_const(7).constant_value() == 7
        assert Polynomial().constant_value() == 0
        assert px.constant_value() is None

    def test_is_constant(self):
        assert poly_const(3).is_constant()
        assert not px.is_constant()

    def test_variable_support(self):
        assert px.support() == frozenset((X,))

    def test_identity_detection(self):
        assert px.is_single_variable_identity() is X
        assert (px * poly_const(2)).is_single_variable_identity() is None
        assert (px * px).is_single_variable_identity() is None
        assert (px + poly_const(1)).is_single_variable_identity() is None


class TestArithmetic:
    def test_addition_merges_terms(self):
        assert px + px == poly_const(2) * px

    def test_subtraction_cancels(self):
        assert (px - px).is_zero()

    def test_multiplication_degree(self):
        assert (px * px).degree() == 2
        assert (px * py).degree() == 2
        assert (px + py).degree() == 1

    def test_distribution(self):
        left = (px + py) * (px - py)
        right = px * px - py * py
        assert left == right

    def test_negation(self):
        assert -(px - py) == py - px

    def test_exact_divide(self):
        assert (poly_const(4) * px).exact_divide(2) == poly_const(2) * px
        assert (poly_const(3) * px).exact_divide(2) is None
        assert px.exact_divide(0) is None

    def test_support_of_product(self):
        assert (px * py + poly_const(1)).support() == frozenset((X, Y))


class TestEvaluation:
    def test_full_evaluation(self):
        poly = px * px + poly_const(2) * py + poly_const(5)
        assert poly.evaluate({X: 3, Y: 4}) == 9 + 8 + 5

    def test_missing_variable_is_none(self):
        assert px.evaluate({}) is None

    def test_partial_evaluate(self):
        poly = px * py + poly_const(3)
        partial = poly.partial_evaluate({X: 2})
        assert partial == poly_const(2) * py + poly_const(3)
        assert partial.support() == frozenset((Y,))

    def test_substitute_composition(self):
        # p(x) = x + 1 composed with x := 2y -> 2y + 1
        poly = px + poly_const(1)
        composed = poly.substitute({X: poly_const(2) * py})
        assert composed == poly_const(2) * py + poly_const(1)

    def test_substitute_power(self):
        poly = px * px
        composed = poly.substitute({X: py + poly_const(1)})
        assert composed == py * py + poly_const(2) * py + poly_const(1)


class TestExprConversion:
    def test_const(self):
        assert expr_to_polynomial(ConstExpr(5)) == poly_const(5)

    def test_entry(self):
        assert expr_to_polynomial(EntryExpr(X)) == px

    def test_unknown_is_none(self):
        assert expr_to_polynomial(UnknownExpr()) is None

    def test_arithmetic_tree(self):
        expr = make_binop(
            "+", make_binop("*", EntryExpr(X), ConstExpr(2)), ConstExpr(1)
        )
        assert expr_to_polynomial(expr) == poly_const(2) * px + poly_const(1)

    def test_negation(self):
        expr = make_unop("neg", EntryExpr(X))
        assert expr_to_polynomial(expr) == -px

    def test_exact_constant_division(self):
        expr = make_binop(
            "/", make_binop("*", EntryExpr(X), ConstExpr(4)), ConstExpr(2)
        )
        assert expr_to_polynomial(expr) == poly_const(2) * px

    def test_inexact_division_rejected(self):
        expr = make_binop(
            "/", make_binop("+", EntryExpr(X), ConstExpr(1)), ConstExpr(2)
        )
        assert expr_to_polynomial(expr) is None

    def test_division_by_variable_rejected(self):
        expr = make_binop("/", ConstExpr(10), EntryExpr(X))
        assert expr_to_polynomial(expr) is None

    @pytest.mark.parametrize("op", ["mod", "max", "min", "eq", "lt"])
    def test_nonpolynomial_operators_rejected(self, op):
        expr = make_binop(op, EntryExpr(X), EntryExpr(Y))
        assert expr_to_polynomial(expr) is None


# -- hypothesis properties ----------------------------------------------------

small_ints = st.integers(-30, 30)


@st.composite
def polynomials(draw, variables=(X, Y, Z)):
    poly = Polynomial.constant(draw(small_ints))
    for _ in range(draw(st.integers(0, 4))):
        coefficient = draw(small_ints)
        term = Polynomial.constant(coefficient)
        for var in draw(
            st.lists(st.sampled_from(list(variables)), min_size=0, max_size=3)
        ):
            term = term * Polynomial.variable(var)
        poly = poly + term
    return poly


@st.composite
def environments(draw):
    return {v: draw(small_ints) for v in (X, Y, Z)}


class TestAlgebraProperties:
    @given(polynomials(), polynomials(), environments())
    def test_addition_homomorphism(self, p, q, env):
        assert (p + q).evaluate(env) == p.evaluate(env) + q.evaluate(env)

    @given(polynomials(), polynomials(), environments())
    def test_multiplication_homomorphism(self, p, q, env):
        assert (p * q).evaluate(env) == p.evaluate(env) * q.evaluate(env)

    @given(polynomials(), environments())
    def test_negation_homomorphism(self, p, env):
        assert (-p).evaluate(env) == -p.evaluate(env)

    @given(polynomials(), polynomials())
    def test_commutativity(self, p, q):
        assert p + q == q + p
        assert p * q == q * p

    @given(polynomials(), polynomials(), polynomials())
    def test_distributivity(self, p, q, r):
        assert p * (q + r) == p * q + p * r

    @given(polynomials())
    def test_subtraction_self_is_zero(self, p):
        assert (p - p).is_zero()

    @given(polynomials(), environments())
    def test_partial_then_full_evaluation(self, p, env):
        partial = p.partial_evaluate({X: env[X]})
        assert partial.evaluate(env) == p.evaluate(env)

    @given(polynomials())
    def test_canonical_equality_hash(self, p):
        q = p + Polynomial.constant(0)
        assert p == q
        assert hash(p) == hash(q)
