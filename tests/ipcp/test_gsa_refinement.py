"""GSA-style refinement tests (§4.2's closing remark): complete-
propagation results without dead-code elimination."""

import pytest

from repro.config import AnalysisConfig
from repro.ipcp.driver import analyze_source
from repro.suite.programs import program_source

DISPATCH = (
    "      PROGRAM MAIN\n      CALL DISP(1)\n      END\n"
    "      SUBROUTINE DISP(MODE)\n      INTEGER MODE\n"
    "      IF (MODE .EQ. 1) THEN\n      CALL WK(7)\n"
    "      ELSE\n      CALL WK(9)\n      ENDIF\n      END\n"
    "      SUBROUTINE WK(K)\n      A = K + 1\n      B = K + 2\n      END\n"
)


class TestRefinement:
    def test_dead_dispatch_arm_excluded(self):
        plain = analyze_source(DISPATCH)
        assert plain.constants.constants_of("wk") == {}

        gsa = analyze_source(DISPATCH, AnalysisConfig(gsa_refinement=True))
        wk = gsa.program.procedure("wk")
        assert gsa.constants.constants_of("wk") == {wk.formals[0]: 7}

    def test_matches_complete_propagation_counts(self):
        gsa = analyze_source(DISPATCH, AnalysisConfig(gsa_refinement=True))
        complete = analyze_source(DISPATCH, AnalysisConfig.complete_propagation())
        assert gsa.substituted_constants == complete.substituted_constants

    def test_program_not_mutated(self):
        # Unlike complete propagation, refinement never edits the IR:
        # the dead branch is still present afterwards.
        gsa = analyze_source(DISPATCH, AnalysisConfig(gsa_refinement=True))
        disp = gsa.program.procedure("disp")
        assert len(disp.call_sites()) == 2

    @pytest.mark.parametrize("name", ["ocean", "spec77"])
    def test_matches_complete_on_gaining_suite_programs(self, name):
        # ocean and spec77 are exactly the programs where complete
        # propagation gains over plain with-MOD; the GSA-style generator
        # must recover the same counts without DCE.
        source = program_source(name)
        complete = analyze_source(
            source, AnalysisConfig.complete_propagation(), filename=f"{name}.f"
        )
        gsa = analyze_source(
            source, AnalysisConfig(gsa_refinement=True), filename=f"{name}.f"
        )
        assert gsa.substituted_constants == complete.substituted_constants

    @pytest.mark.parametrize("name", ["trfd", "mdg", "qcd"])
    def test_no_change_where_complete_gains_nothing(self, name):
        source = program_source(name)
        plain = analyze_source(source, filename=f"{name}.f")
        gsa = analyze_source(
            source, AnalysisConfig(gsa_refinement=True), filename=f"{name}.f"
        )
        assert gsa.substituted_constants == plain.substituted_constants

    def test_describe_mentions_gsa(self):
        assert "gsa" in AnalysisConfig(gsa_refinement=True).describe()

    def test_refinement_never_loses_constants(self):
        from repro.suite.generator import GeneratorConfig, generate_program

        for seed in range(6):
            source = generate_program(seed, GeneratorConfig(procedures=4))
            plain = analyze_source(source)
            gsa = analyze_source(source, AnalysisConfig(gsa_refinement=True))
            assert gsa.substituted_constants >= plain.substituted_constants

    def test_refinement_sound(self):
        from repro.frontend.parser import parse_source
        from repro.frontend.source import SourceFile
        from repro.ir.interp import run_program
        from repro.ir.lowering import lower_module
        from repro.suite.generator import GeneratorConfig, generate_program

        for seed in range(4):
            source = generate_program(seed, GeneratorConfig(procedures=4))
            executable = lower_module(
                parse_source(source), SourceFile("g.f", source)
            )
            trace = run_program(executable, inputs=[2, -5, 9] * 40, fuel=3_000_000)
            result = analyze_source(source, AnalysisConfig(gsa_refinement=True))
            for procedure in result.program:
                claimed = result.constants.constants_of(procedure.name)
                assert trace.constant_violations(procedure.name, claimed) == []
