"""Substitution measurement and transformed-source tests (§4.1)."""

from repro.config import AnalysisConfig, JumpFunctionKind
from repro.ipcp.driver import analyze_source
from repro.ipcp.substitution import apply_substitution
from repro.ir.instructions import Const, Print

SIMPLE = (
    "      PROGRAM MAIN\n"
    "      N = 6\n"
    "      CALL S(N)\n"
    "      END\n"
    "      SUBROUTINE S(K)\n"
    "      A = K + 1\n"
    "      B = K * 2\n"
    "      RETURN\n"
    "      END\n"
)


class TestMeasurement:
    def test_counts_references_not_pairs(self):
        result = analyze_source(SIMPLE)
        # K is one constant but referenced twice; N referenced once.
        assert result.substituted_constants == 3

    def test_per_procedure_breakdown(self):
        result = analyze_source(SIMPLE)
        assert result.substitution.count_for("s") == 2
        assert result.substitution.count_for("main") == 1

    def test_sites_carry_values(self):
        result = analyze_source(SIMPLE)
        values = {site.value for site in result.substitution.sites}
        assert values == {6}

    def test_unreferenced_constant_not_counted(self):
        # The Metzger-Stroud point: a known-but-unreferenced constant
        # contributes nothing.
        result = analyze_source(
            "      PROGRAM MAIN\n      CALL S(6)\n      END\n"
            "      SUBROUTINE S(K)\n      READ *, X\n      Y = X\n      END\n"
        )
        assert result.constants.constants_of("s")
        assert result.substituted_constants == 0

    def test_intraprocedural_cascade_counted(self):
        result = analyze_source(
            "      PROGRAM MAIN\n      CALL S(6)\n      END\n"
            "      SUBROUTINE S(K)\n      A = K + 1\n      B = A * 2\n"
            "      END\n"
        )
        # K const -> A const -> the A reference counts too.
        assert result.substituted_constants == 2


class TestTransformedSource:
    def test_references_textually_replaced(self):
        result = analyze_source(SIMPLE, filename="<string>")
        transformed = result.transformed_source()
        assert "A = 6 + 1" in transformed
        assert "B = 6 * 2" in transformed
        assert "CALL S(6)" in transformed

    def test_untouched_lines_preserved(self):
        result = analyze_source(SIMPLE, filename="<string>")
        transformed = result.transformed_source()
        assert "N = 6" in transformed
        assert "SUBROUTINE S(K)" in transformed

    def test_transformed_source_reanalyzes_identically(self):
        result = analyze_source(SIMPLE, filename="<string>")
        transformed = result.transformed_source()
        # The transformed program is valid MiniFortran and the constants
        # are now literals (found even by the literal jump function).
        again = analyze_source(
            transformed,
            AnalysisConfig(jump_function=JumpFunctionKind.LITERAL),
        )
        assert again.substituted_constants >= 0  # parses and analyzes

    def test_multiple_references_on_one_line(self):
        result = analyze_source(
            "      PROGRAM MAIN\n      K = 3\n      X = K + K + K\n      END\n",
            filename="<string>",
        )
        transformed = result.transformed_source()
        assert "X = 3 + 3 + 3" in transformed


class TestApplySubstitution:
    def test_operands_rewritten_in_ir(self):
        result = analyze_source(
            "      PROGRAM MAIN\n      K = 3\n      PRINT *, K\n      END\n"
        )
        rewritten = apply_substitution(result.program, result.substitution)
        assert rewritten >= 1
        main = result.program.procedure("main")
        prints = [
            i for i in main.cfg.instructions() if isinstance(i, Print)
        ]
        assert prints[0].items[0] == Const(3)


class TestModifiedActualExclusion:
    """Regression: a constant variable passed by reference to a callee
    that modifies it is an address, not a value read — substituting it
    textually would sever the writeback (found by the property tests)."""

    PROGRAM = (
        "      PROGRAM MAIN\n"
        "      N = 5\n"
        "      CALL BUMP(N)\n"
        "      PRINT *, N\n"
        "      END\n"
        "      SUBROUTINE BUMP(K)\n"
        "      K = K + 1\n"
        "      END\n"
    )

    def test_modified_actual_not_counted(self):
        result = analyze_source(self.PROGRAM)
        # Only BUMP's K read (value 5) counts; the actual N at the call
        # site and the post-call PRINT N (value 6 via the return jump
        # function) are: excluded (address) and counted respectively.
        locations = {
            (site.use.var.name, site.location.line)
            for site in result.substitution.sites
        }
        assert ("n", 3) not in locations  # the CALL BUMP(N) actual

    def test_transformed_source_keeps_actual(self):
        result = analyze_source(self.PROGRAM, filename="<string>")
        transformed = result.transformed_source()
        assert "CALL BUMP(N)" in transformed

    def test_transformed_behaviour_preserved(self):
        from repro.ir.interp import run_source

        result = analyze_source(self.PROGRAM, filename="<string>")
        transformed = result.transformed_source()
        assert run_source(self.PROGRAM).output == run_source(transformed).output

    def test_apply_substitution_keeps_actual(self):
        result = analyze_source(self.PROGRAM)
        apply_substitution(result.program, result.substitution)
        main = result.program.procedure("main")
        call = main.call_sites()[0]
        from repro.ir.instructions import Use

        assert isinstance(call.args[0].value, Use)
