"""Procedure integration (Wegman-Zadeck comparator) tests."""

import pytest

from repro.ipcp.driver import analyze_source
from repro.ipcp.inlining import integrate_and_propagate, integrate_program
from repro.ir.interp import run_program
from repro.suite.generator import GeneratorConfig, generate_program

from tests.conftest import lower

NESTED = (
    "      PROGRAM MAIN\n      N = 2\n      CALL OUTER(N)\n"
    "      PRINT *, N\n      END\n"
    "      SUBROUTINE OUTER(X)\n      CALL INNER(X)\n      X = X + 1\n"
    "      END\n"
    "      SUBROUTINE INNER(Y)\n      Y = Y * 10\n      END\n"
)


class TestIntegrationMechanics:
    def test_all_calls_inlined(self):
        report = integrate_program(lower(NESTED))
        assert report.inlined_calls == 2
        assert report.remaining_calls == 0

    def test_code_growth_reported(self):
        report = integrate_program(lower(NESTED))
        assert report.code_growth > 1.0
        assert report.instructions_after > report.instructions_before

    def test_behaviour_preserved(self):
        original = run_program(lower(NESTED))
        integrated_program = lower(NESTED)
        integrate_program(integrated_program)
        integrated = run_program(integrated_program)
        # N = 2 -> INNER: 20 -> OUTER: 21
        assert original.output == integrated.output == ["21"]

    def test_function_result_wired(self):
        text = (
            "      PROGRAM MAIN\n      X = TWICE(21)\n      PRINT *, X\n"
            "      END\n"
            "      INTEGER FUNCTION TWICE(Q)\n      TWICE = Q * 2\n      END\n"
        )
        program = lower(text)
        report = integrate_program(program)
        assert report.remaining_calls == 0
        assert run_program(program).output == ["42"]

    def test_expression_actual_writeback_lost(self):
        text = (
            "      PROGRAM MAIN\n      N = 1\n      CALL SET(N + 0)\n"
            "      PRINT *, N\n      END\n"
            "      SUBROUTINE SET(K)\n      K = 42\n      END\n"
        )
        program = lower(text)
        integrate_program(program)
        assert run_program(program).output == ["1"]

    def test_recursive_calls_left_alone(self):
        text = (
            "      PROGRAM MAIN\n      CALL R(3)\n      END\n"
            "      SUBROUTINE R(N)\n"
            "      IF (N .GT. 0) THEN\n      CALL R(N - 1)\n      ENDIF\n"
            "      END\n"
        )
        report = integrate_program(lower(text))
        assert report.inlined_calls == 0
        assert report.remaining_calls == 1

    def test_globals_shared_through_integration(self):
        text = (
            "      PROGRAM MAIN\n      COMMON /B/ G\n      CALL INIT\n"
            "      PRINT *, G\n      END\n"
            "      SUBROUTINE INIT\n      COMMON /B/ G\n      G = 13\n"
            "      END\n"
        )
        program = lower(text)
        integrate_program(program)
        assert run_program(program).output == ["13"]

    @pytest.mark.parametrize("seed", range(6))
    def test_generated_programs_preserved(self, seed):
        source = generate_program(seed, GeneratorConfig(procedures=4))
        inputs = [1, -2, 5] * 40
        original = run_program(lower(source), inputs=inputs, fuel=3_000_000)
        program = lower(source)
        integrate_program(program, max_depth=3)
        integrated = run_program(program, inputs=inputs, fuel=6_000_000)
        assert integrated.output == original.output


class TestIntegrationPropagation:
    def test_finds_interprocedural_constants_intraprocedurally(self):
        text = (
            "      PROGRAM MAIN\n      CALL S(6)\n      END\n"
            "      SUBROUTINE S(K)\n      A = K + 1\n      B = K * 2\n"
            "      END\n"
        )
        report = integrate_and_propagate(lower(text))
        # After inlining, K's references live in MAIN with K = 6.
        assert report.substituted_references >= 2

    def test_path_sensitivity_beats_meet(self):
        # The same procedure called with 4 and 8: jump functions meet to
        # bottom, but integration duplicates the body per path.
        text = (
            "      PROGRAM MAIN\n      CALL C(4)\n      CALL C(8)\n      END\n"
            "      SUBROUTINE C(S)\n      A = S + 1\n      B = S + 2\n"
            "      END\n"
        )
        jump_functions = analyze_source(text)
        report = integrate_and_propagate(lower(text))
        # Jump functions: S meets 4 ^ 8 = bottom, nothing substitutable.
        assert jump_functions.substituted_constants == 0
        assert report.substituted_references >= 4  # both specialized bodies

    def test_depth_cap_respected(self):
        report = integrate_program(lower(NESTED), max_depth=1)
        # Round 1 inlines OUTER (and exposes INNER's call in MAIN).
        assert report.inlined_calls >= 1


class TestBudgetsAndEdges:
    def test_instruction_budget_stops_inlining(self):
        from repro.ipcp.inlining import integrate_program

        report = integrate_program(lower(NESTED), max_instructions=1)
        assert report.remaining_calls >= 1

    def test_zero_depth_means_no_inlining(self):
        from repro.ipcp.inlining import integrate_program

        report = integrate_program(lower(NESTED), max_depth=0)
        assert report.inlined_calls == 0
        assert report.code_growth == 1.0

    def test_only_main_is_integrated(self):
        from repro.ipcp.inlining import integrate_program

        program = lower(NESTED)
        integrate_program(program)
        # OUTER still contains its own call to INNER (only MAIN's view
        # was integrated).
        outer = program.procedure("outer")
        assert len(outer.call_sites()) == 1
