"""Complete propagation and driver configuration tests."""

import pytest

from repro.config import AnalysisConfig, JumpFunctionKind
from repro.ipcp.driver import analyze_source

DISPATCH = (
    "      PROGRAM MAIN\n      CALL DISP(1)\n      END\n"
    "      SUBROUTINE DISP(MODE)\n      INTEGER MODE\n"
    "      IF (MODE .EQ. 1) THEN\n      CALL WK(7)\n"
    "      ELSE\n      CALL WK(9)\n      ENDIF\n      END\n"
    "      SUBROUTINE WK(K)\n      A = K + 1\n      B = K + 2\n      END\n"
)


class TestCompletePropagation:
    def test_dead_call_edge_removed_exposes_constant(self):
        plain = analyze_source(DISPATCH)
        assert plain.constants.constants_of("wk") == {}

        complete = analyze_source(DISPATCH, AnalysisConfig.complete_propagation())
        wk = complete.program.procedure("wk")
        assert complete.constants.constants_of("wk") == {wk.formals[0]: 7}
        assert complete.dce_rounds == 1

    def test_complete_never_below_plain(self):
        plain = analyze_source(DISPATCH)
        complete = analyze_source(DISPATCH, AnalysisConfig.complete_propagation())
        assert complete.substituted_constants >= plain.substituted_constants

    def test_no_dead_code_means_zero_rounds(self):
        result = analyze_source(
            "      PROGRAM MAIN\n      CALL S(1)\n      END\n"
            "      SUBROUTINE S(K)\n      X = K\n      END\n",
            AnalysisConfig.complete_propagation(),
        )
        assert result.dce_rounds == 0

    def test_callgraph_rebuilt(self):
        complete = analyze_source(DISPATCH, AnalysisConfig.complete_propagation())
        wk = complete.program.procedure("wk")
        assert len(complete.callgraph.sites_into(wk)) == 1


class TestDriverConfigurations:
    PROGRAM = (
        "      PROGRAM MAIN\n      COMMON /C/ G\n      N = 4\n"
        "      CALL INIT\n      CALL S(N)\n      END\n"
        "      SUBROUTINE INIT\n      COMMON /C/ G\n      G = 2\n      END\n"
        "      SUBROUTINE S(K)\n      COMMON /C/ G\n      A = K + G\n"
        "      END\n"
    )

    def test_default_config_finds_everything(self):
        result = analyze_source(self.PROGRAM)
        s = result.program.procedure("s")
        constants = result.constants.constants_of("s")
        assert constants[s.formals[0]] == 4
        g = result.program.scalar_globals()[0]
        assert constants[g] == 2

    def test_no_returns_loses_init_global(self):
        result = analyze_source(
            self.PROGRAM, AnalysisConfig(use_return_functions=False)
        )
        g = result.program.scalar_globals()[0]
        assert g not in result.constants.constants_of("s")

    def test_intraprocedural_only_finds_no_interprocedural(self):
        result = analyze_source(self.PROGRAM, AnalysisConfig.intraprocedural_only())
        assert result.constants.constants_of("s") == {}
        assert result.jump_table is None
        assert result.propagation is None

    def test_describe_strings(self):
        assert "poly" in AnalysisConfig().describe()
        assert "nomod" in AnalysisConfig(use_mod=False).describe()
        assert "complete" in AnalysisConfig.complete_propagation().describe()
        assert "intraprocedural" in AnalysisConfig.intraprocedural_only().describe()

    def test_with_kind(self):
        config = AnalysisConfig().with_kind(JumpFunctionKind.LITERAL)
        assert config.jump_function is JumpFunctionKind.LITERAL
        assert config.use_mod  # other fields preserved

    def test_kind_order(self):
        order = [k.order for k in JumpFunctionKind]
        assert order == sorted(order)

    def test_constants_report_format(self):
        result = analyze_source(self.PROGRAM)
        report = result.constants.format_report()
        assert "CONSTANTS(s)" in report
        assert "k=4" in report

    def test_total_pairs(self):
        result = analyze_source(self.PROGRAM)
        assert result.constants.total_pairs() >= 2

    def test_transformed_source_requires_source(self):
        from repro.ir.module import Program
        from repro.ipcp.driver import analyze_program

        result = analyze_source(self.PROGRAM)
        result.program.source = None
        with pytest.raises(ValueError):
            result.transformed_source()
