"""Value-numbering call semantics in *generation* mode (§3.2's first
evaluation): symbolic return-jump-function composition during the
bottom-up pass — the machinery that lets a caller's return jump function
be built from its callees' effects."""

from repro.analysis.expr import ConstExpr, EntryExpr, OpExpr
from repro.analysis.value_numbering import ValueNumbering
from repro.config import AnalysisConfig
from repro.ipcp.driver import prepare_program
from repro.ipcp.return_functions import (
    ForwardCallSemantics,
    GenerationCallSemantics,
    build_return_functions,
)
from repro.ir.instructions import Print

from tests.conftest import lower


def build(text):
    program = lower(text)
    callgraph, modref = prepare_program(program, AnalysisConfig())
    return_map = build_return_functions(program, callgraph, modref)
    return program, return_map


def print_expr(program, return_map, proc, semantics_cls, index=0):
    procedure = program.procedure(proc)
    numbering = ValueNumbering(
        procedure, semantics_cls(program, return_map)
    )
    prints = [
        i for i in procedure.cfg.instructions() if isinstance(i, Print)
    ]
    return numbering.operand_expr(prints[0].operands()[index])


SYMBOLIC = (
    "      PROGRAM MAIN\n      N = 1\n      CALL OUTER(N)\n      END\n"
    "      SUBROUTINE OUTER(X)\n      CALL TRIPLE(X)\n      PRINT *, X\n"
    "      END\n"
    "      SUBROUTINE TRIPLE(Y)\n      Y = Y * 3\n      END\n"
)


class TestGenerationMode:
    def test_symbolic_composition_kept(self):
        # After CALL TRIPLE(X), generation-mode value numbering knows
        # X = 3 * entry(X) — a symbolic polynomial of OUTER's entry.
        program, return_map = build(SYMBOLIC)
        expr = print_expr(program, return_map, "outer", GenerationCallSemantics)
        assert isinstance(expr, OpExpr)
        outer_x = program.procedure("outer").formals[0]
        assert expr.support() == frozenset((outer_x,))

    def test_composed_return_function_built(self):
        # OUTER's own return jump function for X composes TRIPLE's.
        program, return_map = build(SYMBOLIC)
        outer = program.procedure("outer")
        rjf = return_map.lookup("outer", outer.formals[0])
        assert rjf is not None
        assert rjf.polynomial.evaluate({outer.formals[0]: 5}) == 15

    def test_two_level_composition(self):
        text = (
            "      PROGRAM MAIN\n      N = 1\n      CALL A(N)\n      END\n"
            "      SUBROUTINE A(X)\n      CALL B(X)\n      END\n"
            "      SUBROUTINE B(Y)\n      CALL C(Y)\n      Y = Y + 1\n"
            "      END\n"
            "      SUBROUTINE C(Z)\n      Z = Z * 2\n      END\n"
        )
        program, return_map = build(text)
        a = program.procedure("a")
        rjf = return_map.lookup("a", a.formals[0])
        assert rjf is not None
        # A(x): B(x) = C(x) + 1 = 2x + 1.
        assert rjf.polynomial.evaluate({a.formals[0]: 10}) == 21


class TestForwardMode:
    def test_nonconstant_rejected(self):
        # Forward mode (§3.2's second evaluation): TRIPLE's result
        # depends on OUTER's formal, so it "can never be evaluated as
        # constant" — X after the call is opaque.
        program, return_map = build(SYMBOLIC)
        expr = print_expr(program, return_map, "outer", ForwardCallSemantics)
        assert not isinstance(expr, (ConstExpr, OpExpr, EntryExpr))

    def test_constant_accepted(self):
        text = (
            "      PROGRAM MAIN\n      N = 7\n      CALL TRIPLE(N)\n"
            "      PRINT *, N\n      END\n"
            "      SUBROUTINE TRIPLE(Y)\n      Y = Y * 3\n      END\n"
        )
        program, return_map = build(text)
        expr = print_expr(program, return_map, "main", ForwardCallSemantics)
        assert expr == ConstExpr(21)

    def test_generation_and_forward_agree_on_constants(self):
        text = (
            "      PROGRAM MAIN\n      N = 7\n      CALL TRIPLE(N)\n"
            "      PRINT *, N\n      END\n"
            "      SUBROUTINE TRIPLE(Y)\n      Y = Y * 3\n      END\n"
        )
        program, return_map = build(text)
        generation = print_expr(
            program, return_map, "main", GenerationCallSemantics
        )
        forward = print_expr(program, return_map, "main", ForwardCallSemantics)
        assert generation == forward == ConstExpr(21)
