"""ConstantsResult container tests."""

from repro.ipcp.constants import ConstantsResult, empty_constants
from repro.ir.symbols import Variable, VarKind
from repro.lattice import BOTTOM, TOP, const

from tests.conftest import lower, TRI_PROGRAM


def make_result():
    x = Variable("x", VarKind.FORMAL)
    g = Variable("g", VarKind.GLOBAL)
    y = Variable("y", VarKind.FORMAL)
    val = {
        "p": {x: const(4), g: BOTTOM},
        "q": {y: TOP},
        "r": {},
    }
    return ConstantsResult(val), x, g, y


class TestQueries:
    def test_val_of(self):
        result, x, g, y = make_result()
        assert result.val_of("p", x) == const(4)
        assert result.val_of("p", g) == BOTTOM
        assert result.val_of("q", y) == TOP
        assert result.val_of("missing", x) == BOTTOM

    def test_constants_of_filters_to_constants(self):
        result, x, _g, _y = make_result()
        assert result.constants_of("p") == {x: 4}
        assert result.constants_of("q") == {}

    def test_total_pairs(self):
        result, *_ = make_result()
        assert result.total_pairs() == 1

    def test_procedures_with_constants(self):
        result, *_ = make_result()
        assert result.procedures_with_constants() == ["p"]

    def test_items_iterates_everything(self):
        result, *_ = make_result()
        assert len(list(result.items())) == 3

    def test_val_set_is_a_copy(self):
        result, x, *_ = make_result()
        snapshot = result.val_set("p")
        snapshot[x] = BOTTOM
        assert result.val_of("p", x) == const(4)


class TestEntryLattice:
    def test_top_degrades_to_bottom(self):
        program = lower(TRI_PROGRAM)
        result, x, g, y = make_result()
        # Build a ConstantsResult keyed by a real procedure.
        foo = program.procedure("foo")
        k = foo.formals[0]
        values = ConstantsResult({"foo": {k: TOP}})
        entry = values.entry_lattice(foo)
        assert entry[k] == BOTTOM

    def test_constants_survive(self):
        program = lower(TRI_PROGRAM)
        foo = program.procedure("foo")
        k = foo.formals[0]
        values = ConstantsResult({"foo": {k: const(9)}})
        assert values.entry_lattice(foo)[k] == const(9)


class TestFormatting:
    def test_report_sorted_and_named(self):
        result, *_ = make_result()
        report = result.format_report()
        assert report == "CONSTANTS(p) = {x=4}"

    def test_empty_report_message(self):
        assert "no interprocedural constants" in ConstantsResult({}).format_report()

    def test_empty_constants_helper(self):
        program = lower(TRI_PROGRAM)
        result = empty_constants(program)
        assert result.total_pairs() == 0
        for procedure in program:
            assert result.constants_of(procedure.name) == {}


class TestRelevantConstants:
    def test_unreferenced_globals_filtered(self):
        from repro.ipcp.driver import analyze_source

        # W never references H: H=2 is known-but-irrelevant for W.
        result = analyze_source(
            "      PROGRAM MAIN\n      COMMON /C/ G, H\n      G = 1\n"
            "      H = 2\n      CALL W\n      END\n"
            "      SUBROUTINE W\n      COMMON /C/ G, H\n      X = G\n"
            "      END\n"
        )
        full = result.constants.constants_of("w")
        relevant = result.constants.relevant_constants_of(
            "w", result.modref.ref
        )
        names = lambda d: {v.name for v in d}
        assert names(full) == {"g", "h"}
        assert names(relevant) == {"g"}

    def test_relevant_is_subset(self):
        from repro.ipcp.driver import analyze_source
        from repro.suite.programs import program_source

        result = analyze_source(program_source("ocean"), filename="ocean.f")
        for procedure in result.program:
            full = result.constants.constants_of(procedure.name)
            relevant = result.constants.relevant_constants_of(
                procedure.name, result.modref.ref
            )
            assert set(relevant) <= set(full)
