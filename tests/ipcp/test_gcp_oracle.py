"""gcp oracle ablation tests: value numbering vs SCCP (§3.1 leaves the
choice open — "intraprocedural constant propagation or value numbering").
"""

import pytest

from repro.config import AnalysisConfig
from repro.ipcp.driver import analyze_source
from repro.suite.generator import GeneratorConfig, generate_program

#: A branch on an intraprocedurally known condition feeds the call:
#: value numbering merges the two arms to unknown, but SCCP prunes the
#: dead arm and proves Y = 5.
BRANCHY_CALL = (
    "      PROGRAM MAIN\n"
    "      X = 1\n"
    "      IF (X .EQ. 1) THEN\n      Y = 5\n      ELSE\n      Y = 6\n"
    "      ENDIF\n"
    "      CALL S(Y)\n"
    "      END\n"
    "      SUBROUTINE S(K)\n      A = K + 1\n      B = K + 2\n      END\n"
)


def constants_of(result, proc):
    return {
        var.name: value
        for var, value in result.constants.constants_of(proc).items()
    }


class TestOracles:
    def test_value_numbering_misses_branch_merge(self):
        result = analyze_source(
            BRANCHY_CALL, AnalysisConfig(gcp_oracle="value_numbering")
        )
        assert constants_of(result, "s") == {}

    def test_sccp_oracle_prunes_dead_arm(self):
        result = analyze_source(BRANCHY_CALL, AnalysisConfig(gcp_oracle="sccp"))
        assert constants_of(result, "s") == {"k": 5}

    def test_sccp_oracle_strictly_stronger_here(self):
        vn = analyze_source(BRANCHY_CALL, AnalysisConfig())
        sccp = analyze_source(BRANCHY_CALL, AnalysisConfig(gcp_oracle="sccp"))
        assert sccp.substituted_constants > vn.substituted_constants

    def test_oracles_agree_on_straightline_code(self):
        text = (
            "      PROGRAM MAIN\n      N = 3\n      CALL S(N * 2)\n      END\n"
            "      SUBROUTINE S(K)\n      A = K\n      END\n"
        )
        vn = analyze_source(text, AnalysisConfig())
        sccp = analyze_source(text, AnalysisConfig(gcp_oracle="sccp"))
        assert vn.substituted_constants == sccp.substituted_constants
        assert constants_of(vn, "s") == constants_of(sccp, "s") == {"k": 6}

    def test_unknown_oracle_rejected(self):
        with pytest.raises(ValueError):
            analyze_source(BRANCHY_CALL, AnalysisConfig(gcp_oracle="psychic"))

    @pytest.mark.parametrize("seed", range(8))
    def test_sccp_oracle_never_finds_fewer(self, seed):
        source = generate_program(seed, GeneratorConfig(procedures=4))
        vn = analyze_source(source, AnalysisConfig())
        sccp = analyze_source(source, AnalysisConfig(gcp_oracle="sccp"))
        assert sccp.substituted_constants >= vn.substituted_constants

    @pytest.mark.parametrize("seed", range(4))
    def test_sccp_oracle_is_sound(self, seed):
        from repro.frontend.parser import parse_source
        from repro.frontend.source import SourceFile
        from repro.ir.interp import run_program
        from repro.ir.lowering import lower_module

        source = generate_program(seed, GeneratorConfig(procedures=4))
        executable = lower_module(
            parse_source(source), SourceFile("g.f", source)
        )
        trace = run_program(executable, inputs=[1, 4, -3] * 40, fuel=3_000_000)
        result = analyze_source(source, AnalysisConfig(gcp_oracle="sccp"))
        for procedure in result.program:
            claimed = result.constants.constants_of(procedure.name)
            assert trace.constant_violations(procedure.name, claimed) == []
