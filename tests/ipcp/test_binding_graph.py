"""Binding multi-graph solver tests: structure, fixpoint equivalence
with the call-graph worklist solver, and work granularity."""

import pytest

from repro.config import AnalysisConfig, JumpFunctionKind
from repro.ipcp.binding_graph import BindingMultiGraph, propagate_binding_graph
from repro.ipcp.driver import prepare_program
from repro.ipcp.jump_functions import build_forward_jump_functions
from repro.ipcp.return_functions import build_return_functions
from repro.ipcp.solver import propagate
from repro.suite.generator import GeneratorConfig, generate_program
from repro.suite.programs import program_source

from tests.conftest import lower


def prepared_with_table(text, kind=JumpFunctionKind.POLYNOMIAL):
    program = lower(text)
    config = AnalysisConfig(jump_function=kind)
    callgraph, modref = prepare_program(program, config)
    return_map = build_return_functions(program, callgraph, modref)
    table = build_forward_jump_functions(program, callgraph, kind, return_map)
    return program, callgraph, table


CHAIN = (
    "      PROGRAM MAIN\n      CALL A(5)\n      END\n"
    "      SUBROUTINE A(X)\n      CALL B(X)\n      CALL B(X)\n      END\n"
    "      SUBROUTINE B(Y)\n      Z = Y\n      END\n"
)


class TestGraphStructure:
    def test_nodes_cover_entry_domains(self):
        program, callgraph, table = prepared_with_table(CHAIN)
        graph = BindingMultiGraph(program, callgraph, table)
        node_names = {(proc, var.name) for proc, var in graph.nodes}
        assert ("a", "x") in node_names
        assert ("b", "y") in node_names

    def test_one_edge_per_site_per_parameter(self):
        program, callgraph, table = prepared_with_table(CHAIN)
        graph = BindingMultiGraph(program, callgraph, table)
        b = program.procedure("b")
        target = ("b", b.formals[0])
        assert len(graph.in_edges[target]) == 2  # two CALL B sites

    def test_dependents_index_follows_support(self):
        program, callgraph, table = prepared_with_table(CHAIN)
        graph = BindingMultiGraph(program, callgraph, table)
        a = program.procedure("a")
        source = ("a", a.formals[0])
        # Both edges into B depend on A's formal (pass-through support).
        assert len(graph.dependents[source]) == 2

    def test_statistics(self):
        program, callgraph, table = prepared_with_table(CHAIN)
        graph = BindingMultiGraph(program, callgraph, table)
        stats = graph.statistics()
        assert stats["nodes"] == len(graph.nodes)
        assert stats["edges"] == len(graph.edges)
        assert stats["total_support"] >= 2


class TestFixpointEquivalence:
    def assert_equivalent(self, text, kind=JumpFunctionKind.POLYNOMIAL):
        program, callgraph, table = prepared_with_table(text, kind)
        worklist_result = propagate(program, callgraph, table)
        binding_result = propagate_binding_graph(program, callgraph, table)
        for procedure in program:
            assert binding_result.constants.constants_of(
                procedure.name
            ) == worklist_result.constants.constants_of(procedure.name), (
                procedure.name
            )

    def test_chain(self):
        self.assert_equivalent(CHAIN)

    def test_conflict(self):
        self.assert_equivalent(
            "      PROGRAM MAIN\n      CALL S(1)\n      CALL S(2)\n      END\n"
            "      SUBROUTINE S(K)\n      X = K\n      END\n"
        )

    def test_recursion(self):
        self.assert_equivalent(
            "      PROGRAM MAIN\n      CALL R(10, 7)\n      END\n"
            "      SUBROUTINE R(N, V)\n"
            "      IF (N .GT. 0) THEN\n      CALL R(N - 1, V)\n      ENDIF\n"
            "      END\n"
        )

    @pytest.mark.parametrize("kind", list(JumpFunctionKind), ids=lambda k: k.value)
    def test_every_kind(self, kind):
        self.assert_equivalent(CHAIN, kind)

    @pytest.mark.parametrize("name", ["ocean", "doduc", "trfd", "simple"])
    def test_suite_programs(self, name):
        self.assert_equivalent(program_source(name))

    @pytest.mark.parametrize("seed", range(6))
    def test_generated_programs(self, seed):
        self.assert_equivalent(
            generate_program(seed, GeneratorConfig(procedures=5))
        )


class TestGranularity:
    def test_binding_graph_evaluates_fewer_functions_on_sparse_change(self):
        # A program with a wide procedure where only one parameter's
        # lowering should trigger narrow re-evaluation.
        text = (
            "      PROGRAM MAIN\n"
            "      CALL W(1, 2, 3, 4)\n      CALL W(9, 2, 3, 4)\n      END\n"
            "      SUBROUTINE W(A, B, C, D)\n"
            "      CALL L(A)\n      CALL L(B)\n      CALL L(C)\n"
            "      CALL L(D)\n      END\n"
            "      SUBROUTINE L(K)\n      X = K\n      END\n"
        )
        program, callgraph, table = prepared_with_table(text)
        worklist_result = propagate(program, callgraph, table)
        binding_result = propagate_binding_graph(program, callgraph, table)
        assert (
            binding_result.stats.jump_function_evaluations
            <= worklist_result.stats.jump_function_evaluations
        )


class TestComplexityStructure:
    """§3.1.5's accounting, observable in the binding multi-graph: jump
    functions with empty support are never re-evaluated; pass-through
    and polynomial functions are re-evaluated once per support-variable
    lowering."""

    def _solve(self, text, kind):
        program, callgraph, table = prepared_with_table(text, kind)
        graph = BindingMultiGraph(program, callgraph, table)
        result = propagate_binding_graph(program, callgraph, table)
        return graph, result

    def test_supportless_kinds_evaluate_each_edge_once(self):
        text = (
            "      PROGRAM MAIN\n      N = 2\n"
            "      CALL A(5)\n      CALL B(N)\n      END\n"
            "      SUBROUTINE A(X)\n      Y = X\n      END\n"
            "      SUBROUTINE B(X)\n      Y = X\n      END\n"
        )
        for kind in (JumpFunctionKind.LITERAL, JumpFunctionKind.INTRAPROCEDURAL):
            graph, result = self._solve(text, kind)
            # No jump function has support, so nothing ever triggers a
            # re-evaluation: total evaluations == total in-edges.
            edges = sum(len(v) for v in graph.in_edges.values())
            assert result.stats.jump_function_evaluations == edges, kind

    def test_support_triggers_bounded_reevaluation(self):
        # A pass-through chain: each lowering of a node re-evaluates its
        # dependent edges; the lattice's bounded depth caps the total at
        # edges * (1 + lowerings-per-support-var) <= edges * 3.
        text = (
            "      PROGRAM MAIN\n      CALL C1(5)\n      END\n"
            "      SUBROUTINE C1(X)\n      CALL C2(X)\n      END\n"
            "      SUBROUTINE C2(X)\n      CALL C3(X)\n      END\n"
            "      SUBROUTINE C3(X)\n      Y = X\n      END\n"
        )
        graph, result = self._solve(text, JumpFunctionKind.PASS_THROUGH)
        edges = sum(len(v) for v in graph.in_edges.values())
        assert result.stats.jump_function_evaluations <= edges * 3
