"""Analysis statistics tests."""

from repro.config import AnalysisConfig, JumpFunctionKind
from repro.ipcp.driver import analyze_source
from repro.ipcp.stats import collect_statistics

from tests.conftest import TRI_PROGRAM


class TestStatistics:
    def test_basic_fields(self):
        result = analyze_source(TRI_PROGRAM)
        stats = collect_statistics(result)
        assert stats.procedures == 3
        assert stats.call_sites == 2
        assert stats.forward_jump_functions > 0
        assert stats.constant_pairs == result.constants.total_pairs()
        assert stats.substituted_references == result.substituted_constants

    def test_payload_counts_sum(self):
        result = analyze_source(TRI_PROGRAM)
        stats = collect_statistics(result)
        assert sum(stats.payload_counts.values()) == stats.forward_jump_functions

    def test_intraprocedural_run_has_no_solver_stats(self):
        result = analyze_source(TRI_PROGRAM, AnalysisConfig.intraprocedural_only())
        stats = collect_statistics(result)
        assert stats.forward_jump_functions == 0
        assert stats.solver_visits == 0

    def test_literal_cheaper_than_polynomial(self):
        # The Section 3.1.5 cost ordering, made concrete: literal jump
        # functions carry no support and unit cost.
        literal = collect_statistics(
            analyze_source(
                TRI_PROGRAM, AnalysisConfig(jump_function=JumpFunctionKind.LITERAL)
            )
        )
        poly = collect_statistics(analyze_source(TRI_PROGRAM))
        assert literal.total_support == 0
        assert literal.total_evaluation_cost <= poly.total_evaluation_cost
        assert poly.total_support >= 1

    def test_format_is_readable(self):
        result = analyze_source(TRI_PROGRAM)
        text = collect_statistics(result).format()
        assert "forward jump functions" in text
        assert "substituted references" in text

    def test_dce_rounds_reported(self):
        source = (
            "      PROGRAM MAIN\n      CALL D(1)\n      END\n"
            "      SUBROUTINE D(M)\n"
            "      IF (M .EQ. 1) THEN\n      CALL W(7)\n"
            "      ELSE\n      CALL W(9)\n      ENDIF\n      END\n"
            "      SUBROUTINE W(K)\n      A = K\n      END\n"
        )
        result = analyze_source(source, AnalysisConfig.complete_propagation())
        stats = collect_statistics(result)
        assert stats.dce_rounds == 1
        assert "DCE rounds" in stats.format()
