"""Return jump function tests (§3.2)."""

from repro.config import AnalysisConfig
from repro.ipcp.driver import prepare_program
from repro.ipcp.return_functions import (
    ReturnFunctionMap,
    build_return_functions,
    callee_target_for,
)

from tests.conftest import lower


def return_map_for(text, use_mod=True):
    program = lower(text)
    config = AnalysisConfig(use_mod=use_mod)
    callgraph, modref = prepare_program(program, config)
    return program, build_return_functions(program, callgraph, modref)


class TestConstruction:
    def test_constant_global_assignment(self):
        program, return_map = return_map_for(
            "      PROGRAM MAIN\n      COMMON /C/ G\n      CALL INIT\n"
            "      END\n"
            "      SUBROUTINE INIT\n      COMMON /C/ G\n      G = 64\n"
            "      END\n"
        )
        g = program.scalar_globals()[0]
        rjf = return_map.lookup("init", g)
        assert rjf is not None
        assert rjf.polynomial.constant_value() == 64

    def test_polynomial_of_entry_values(self):
        program, return_map = return_map_for(
            "      PROGRAM MAIN\n      N = 1\n      CALL S(N)\n      END\n"
            "      SUBROUTINE S(K)\n      K = K * 3 + 1\n      END\n"
        )
        s = program.procedure("s")
        k = s.formals[0]
        rjf = return_map.lookup("s", k)
        assert rjf is not None
        assert rjf.polynomial.evaluate({k: 5}) == 16
        assert rjf.support == frozenset((k,))

    def test_function_result(self):
        program, return_map = return_map_for(
            "      PROGRAM MAIN\n      X = F(2)\n      END\n"
            "      INTEGER FUNCTION F(Q)\n      F = Q + 10\n      END\n"
        )
        f = program.procedure("f")
        rjf = return_map.lookup("f", f.result_var)
        assert rjf is not None
        assert rjf.polynomial.evaluate({f.formals[0]: 2}) == 12

    def test_unmodified_vars_skipped_with_mod(self):
        program, return_map = return_map_for(
            "      PROGRAM MAIN\n      COMMON /C/ G\n      N = 1\n"
            "      CALL S(N)\n      END\n"
            "      SUBROUTINE S(K)\n      COMMON /C/ G\n      X = K\n"
            "      END\n"
        )
        g = program.scalar_globals()[0]
        # With MOD: S modifies nothing, so no return functions exist.
        assert return_map.lookup("s", g) is None

    def test_identity_functions_without_mod(self):
        program, return_map = return_map_for(
            "      PROGRAM MAIN\n      COMMON /C/ G\n      N = 1\n"
            "      CALL S(N)\n      END\n"
            "      SUBROUTINE S(K)\n      COMMON /C/ G\n      X = K\n"
            "      END\n",
            use_mod=False,
        )
        g = program.scalar_globals()[0]
        rjf = return_map.lookup("s", g)
        assert rjf is not None
        assert rjf.polynomial.is_single_variable_identity() is g

    def test_divergent_exits_get_no_function(self):
        program, return_map = return_map_for(
            "      PROGRAM MAIN\n      N = 1\n      CALL S(N)\n      END\n"
            "      SUBROUTINE S(K)\n"
            "      IF (K .GT. 0) THEN\n      K = 1\n      RETURN\n      ENDIF\n"
            "      K = 2\n      RETURN\n      END\n"
        )
        s = program.procedure("s")
        assert return_map.lookup("s", s.formals[0]) is None

    def test_agreeing_exits_get_function(self):
        program, return_map = return_map_for(
            "      PROGRAM MAIN\n      N = 1\n      CALL S(N)\n      END\n"
            "      SUBROUTINE S(K)\n"
            "      IF (K .GT. 0) THEN\n      K = 5\n      RETURN\n      ENDIF\n"
            "      K = 5\n      RETURN\n      END\n"
        )
        s = program.procedure("s")
        rjf = return_map.lookup("s", s.formals[0])
        assert rjf is not None
        assert rjf.polynomial.constant_value() == 5

    def test_read_modified_gets_no_function(self):
        program, return_map = return_map_for(
            "      PROGRAM MAIN\n      N = 1\n      CALL S(N)\n      END\n"
            "      SUBROUTINE S(K)\n      READ *, K\n      END\n"
        )
        s = program.procedure("s")
        assert return_map.lookup("s", s.formals[0]) is None

    def test_recursive_scc_conservative(self):
        program, return_map = return_map_for(
            "      PROGRAM MAIN\n      COMMON /C/ G\n      CALL R(3)\n"
            "      END\n"
            "      SUBROUTINE R(N)\n      COMMON /C/ G\n"
            "      G = 7\n"
            "      IF (N .GT. 0) THEN\n      CALL R(N - 1)\n      ENDIF\n"
            "      END\n"
        )
        g = program.scalar_globals()[0]
        # G = 7 then possibly a recursive call that (per MOD) may write G;
        # inside the SCC no return function is available, so the exits
        # disagree -> no function. Conservative but sound.
        assert return_map.lookup("r", g) is None

    def test_composition_through_callees(self):
        program, return_map = return_map_for(
            "      PROGRAM MAIN\n      COMMON /C/ G\n      CALL OUTER\n"
            "      END\n"
            "      SUBROUTINE OUTER\n      COMMON /C/ G\n      CALL INNER\n"
            "      END\n"
            "      SUBROUTINE INNER\n      COMMON /C/ G\n      G = 11\n"
            "      END\n"
        )
        g = program.scalar_globals()[0]
        rjf = return_map.lookup("outer", g)
        assert rjf is not None
        assert rjf.polynomial.constant_value() == 11

    def test_main_gets_no_functions(self):
        _, return_map = return_map_for(
            "      PROGRAM MAIN\n      COMMON /C/ G\n      G = 1\n      END\n"
        )
        assert return_map.functions_of("main") == []


class TestBindingHelpers:
    def test_callee_target_for_global(self):
        program, _ = return_map_for(
            "      PROGRAM MAIN\n      COMMON /C/ G\n      CALL S\n      END\n"
            "      SUBROUTINE S\n      COMMON /C/ G\n      G = 1\n      END\n"
        )
        g = program.scalar_globals()[0]
        call = program.procedure("main").call_sites()[0]
        callee = program.procedure("s")
        assert callee_target_for(call, callee, g) is g

    def test_callee_target_for_formal(self):
        program, _ = return_map_for(
            "      PROGRAM MAIN\n      N = 1\n      CALL S(N)\n      END\n"
            "      SUBROUTINE S(K)\n      K = 2\n      END\n"
        )
        call = program.procedure("main").call_sites()[0]
        callee = program.procedure("s")
        n = program.procedure("main").symbols.lookup("n")
        assert callee_target_for(call, callee, n) is callee.formals[0]

    def test_aliased_actual_ambiguous(self):
        program, _ = return_map_for(
            "      PROGRAM MAIN\n      N = 1\n      CALL S(N, N)\n      END\n"
            "      SUBROUTINE S(A, B)\n      A = 2\n      B = 3\n      END\n"
        )
        call = program.procedure("main").call_sites()[0]
        callee = program.procedure("s")
        n = program.procedure("main").symbols.lookup("n")
        assert callee_target_for(call, callee, n) is None


class TestMapBasics:
    def test_empty_map(self):
        empty = ReturnFunctionMap()
        assert len(empty) == 0
        assert list(empty) == []

    def test_functions_of(self):
        program, return_map = return_map_for(
            "      PROGRAM MAIN\n      COMMON /C/ G, H\n      CALL INIT\n"
            "      END\n"
            "      SUBROUTINE INIT\n      COMMON /C/ G, H\n      G = 1\n"
            "      H = 2\n      END\n"
        )
        assert len(return_map.functions_of("init")) == 2


class TestAliasingConservatism:
    """FORTRAN forbids redefining aliased dummy/global pairs; where the
    analyzer can *see* the aliasing at a call site, it refuses to apply
    return jump functions rather than trust conformance."""

    def test_global_passed_as_actual_is_ambiguous(self):
        program, _ = return_map_for(
            "      PROGRAM MAIN\n      COMMON /C/ G\n      G = 1\n"
            "      CALL S(G)\n      END\n"
            "      SUBROUTINE S(K)\n      COMMON /C/ G\n      K = 5\n"
            "      END\n"
        )
        g = program.scalar_globals()[0]
        call = program.procedure("main").call_sites()[0]
        callee = program.procedure("s")
        assert callee_target_for(call, callee, g) is None

    def test_global_alias_kills_constant(self):
        # G=1 passed as K; S writes K (i.e. G through the alias). The
        # analyzer must not claim G=1 survives the call.
        from repro.ipcp.driver import analyze_source

        result = analyze_source(
            "      PROGRAM MAIN\n      COMMON /C/ G\n      G = 1\n"
            "      CALL S(G)\n      CALL W\n      END\n"
            "      SUBROUTINE S(K)\n      COMMON /C/ G\n      K = 5\n"
            "      END\n"
            "      SUBROUTINE W\n      COMMON /C/ G\n      X = G\n"
            "      END\n"
        )
        w_constants = {
            var.name: value
            for var, value in result.constants.constants_of("w").items()
        }
        assert "g" not in w_constants

    def test_global_alias_claim_matches_execution(self):
        from repro.ipcp.driver import analyze_source
        from repro.ir.interp import run_source

        source = (
            "      PROGRAM MAIN\n      COMMON /C/ G\n      G = 1\n"
            "      CALL S(G)\n      CALL W\n      END\n"
            "      SUBROUTINE S(K)\n      COMMON /C/ G\n      K = 5\n"
            "      END\n"
            "      SUBROUTINE W\n      COMMON /C/ G\n      PRINT *, G\n"
            "      END\n"
        )
        trace = run_source(source)
        assert trace.output == ["5"]  # the alias really writes G
        result = analyze_source(source)
        for proc in ("s", "w"):
            claimed = result.constants.constants_of(proc)
            assert trace.constant_violations(proc, claimed) == []
