"""Forward jump function construction and evaluation tests (§3.1)."""

import pytest

from repro.config import AnalysisConfig, JumpFunctionKind
from repro.ipcp.driver import prepare_program
from repro.ipcp.jump_functions import build_forward_jump_functions
from repro.ipcp.return_functions import build_return_functions
from repro.lattice import BOTTOM, TOP, const

from tests.conftest import lower


def table_for(text, kind, use_returns=True):
    program = lower(text)
    config = AnalysisConfig(jump_function=kind, use_return_functions=use_returns)
    callgraph, modref = prepare_program(program, config)
    if use_returns:
        return_map = build_return_functions(program, callgraph, modref)
    else:
        return_map = None
    table = build_forward_jump_functions(program, callgraph, kind, return_map)
    return program, table


def jf_for_formal(program, table, callee_name, position=0, site_index=0):
    callee = program.procedure(callee_name)
    calls = [c for c in program.call_sites() if c.callee == callee_name]
    return table.lookup(calls[site_index], callee.formals[position])


LITERAL_ARG = (
    "      PROGRAM MAIN\n      CALL S(42)\n      END\n"
    "      SUBROUTINE S(K)\n      X = K\n      END\n"
)

VAR_ARG = (
    "      PROGRAM MAIN\n      N = 7\n      CALL S(N)\n      END\n"
    "      SUBROUTINE S(K)\n      X = K\n      END\n"
)

PASS_THROUGH = (
    "      PROGRAM MAIN\n      CALL A(5)\n      END\n"
    "      SUBROUTINE A(X)\n      CALL B(X)\n      END\n"
    "      SUBROUTINE B(Y)\n      Z = Y\n      END\n"
)

POLY_ARG = (
    "      PROGRAM MAIN\n      CALL A(5)\n      END\n"
    "      SUBROUTINE A(X)\n      CALL B(X * 2 + 1)\n      END\n"
    "      SUBROUTINE B(Y)\n      Z = Y\n      END\n"
)

GLOBAL_FLOW = (
    "      PROGRAM MAIN\n      COMMON /C/ G\n      G = 9\n      CALL S\n"
    "      END\n"
    "      SUBROUTINE S\n      COMMON /C/ G\n      X = G\n      END\n"
)


class TestLiteralKind:
    def test_literal_actual_is_constant(self):
        program, table = table_for(LITERAL_ARG, JumpFunctionKind.LITERAL)
        jf = jf_for_formal(program, table, "s")
        assert jf.constant == 42

    def test_variable_actual_is_bottom(self):
        program, table = table_for(VAR_ARG, JumpFunctionKind.LITERAL)
        jf = jf_for_formal(program, table, "s")
        assert jf.is_bottom

    def test_globals_always_bottom(self):
        program, table = table_for(GLOBAL_FLOW, JumpFunctionKind.LITERAL)
        g = program.scalar_globals()[0]
        call = program.procedure("main").call_sites()[0]
        assert table.lookup(call, g).is_bottom


class TestIntraproceduralKind:
    def test_gcp_constant_found(self):
        program, table = table_for(VAR_ARG, JumpFunctionKind.INTRAPROCEDURAL)
        jf = jf_for_formal(program, table, "s")
        assert jf.constant == 7

    def test_constant_global_found(self):
        program, table = table_for(GLOBAL_FLOW, JumpFunctionKind.INTRAPROCEDURAL)
        g = program.scalar_globals()[0]
        call = program.procedure("main").call_sites()[0]
        assert table.lookup(call, g).constant == 9

    def test_incoming_formal_is_bottom(self):
        program, table = table_for(PASS_THROUGH, JumpFunctionKind.INTRAPROCEDURAL)
        jf = jf_for_formal(program, table, "b")
        assert jf.is_bottom


class TestPassThroughKind:
    def test_forwarded_formal_is_pass_through(self):
        program, table = table_for(PASS_THROUGH, JumpFunctionKind.PASS_THROUGH)
        jf = jf_for_formal(program, table, "b")
        assert jf.source_var is program.procedure("a").formals[0]

    def test_support_is_exactly_source(self):
        program, table = table_for(PASS_THROUGH, JumpFunctionKind.PASS_THROUGH)
        jf = jf_for_formal(program, table, "b")
        assert jf.support == frozenset((program.procedure("a").formals[0],))

    def test_polynomial_actual_is_bottom(self):
        program, table = table_for(POLY_ARG, JumpFunctionKind.PASS_THROUGH)
        jf = jf_for_formal(program, table, "b")
        assert jf.is_bottom

    def test_global_pass_through(self):
        text = (
            "      PROGRAM MAIN\n      COMMON /C/ G\n      G = 9\n"
            "      CALL A\n      END\n"
            "      SUBROUTINE A\n      COMMON /C/ G\n      CALL B\n      END\n"
            "      SUBROUTINE B\n      COMMON /C/ G\n      X = G\n      END\n"
        )
        program, table = table_for(text, JumpFunctionKind.PASS_THROUGH)
        g = program.scalar_globals()[0]
        call = program.procedure("a").call_sites()[0]
        assert table.lookup(call, g).source_var is g


class TestPolynomialKind:
    def test_polynomial_payload(self):
        program, table = table_for(POLY_ARG, JumpFunctionKind.POLYNOMIAL)
        jf = jf_for_formal(program, table, "b")
        assert jf.polynomial is not None
        x = program.procedure("a").formals[0]
        assert jf.polynomial.evaluate({x: 5}) == 11

    def test_identity_polynomial_demoted_to_pass_through(self):
        program, table = table_for(PASS_THROUGH, JumpFunctionKind.POLYNOMIAL)
        jf = jf_for_formal(program, table, "b")
        assert jf.source_var is not None
        assert jf.polynomial is None

    def test_unknown_actual_is_bottom(self):
        text = (
            "      PROGRAM MAIN\n      READ *, N\n      CALL S(N)\n      END\n"
            "      SUBROUTINE S(K)\n      X = K\n      END\n"
        )
        program, table = table_for(text, JumpFunctionKind.POLYNOMIAL)
        assert jf_for_formal(program, table, "s").is_bottom


class TestEvaluation:
    def test_constant_payload(self):
        program, table = table_for(LITERAL_ARG, JumpFunctionKind.POLYNOMIAL)
        jf = jf_for_formal(program, table, "s")
        assert jf.evaluate(lambda v: BOTTOM) == const(42)

    def test_pass_through_follows_caller(self):
        program, table = table_for(PASS_THROUGH, JumpFunctionKind.PASS_THROUGH)
        jf = jf_for_formal(program, table, "b")
        assert jf.evaluate(lambda v: const(5)) == const(5)
        assert jf.evaluate(lambda v: TOP) == TOP
        assert jf.evaluate(lambda v: BOTTOM) == BOTTOM

    def test_polynomial_evaluation_modes(self):
        program, table = table_for(POLY_ARG, JumpFunctionKind.POLYNOMIAL)
        jf = jf_for_formal(program, table, "b")
        assert jf.evaluate(lambda v: const(3)) == const(7)
        assert jf.evaluate(lambda v: TOP) == TOP
        assert jf.evaluate(lambda v: BOTTOM) == BOTTOM

    def test_bottom_payload(self):
        program, table = table_for(VAR_ARG, JumpFunctionKind.LITERAL)
        jf = jf_for_formal(program, table, "s")
        assert jf.evaluate(lambda v: const(1)) == BOTTOM


class TestHierarchy:
    """§3.1: each kind's constants are a subset of the next kind's."""

    @pytest.mark.parametrize(
        "text", [LITERAL_ARG, VAR_ARG, PASS_THROUGH, POLY_ARG, GLOBAL_FLOW]
    )
    def test_constant_payload_subset(self, text):
        # Build all four tables over the SAME prepared program so the
        # Call instructions are shared keys.
        program = lower(text)
        config = AnalysisConfig()
        callgraph, modref = prepare_program(program, config)
        return_map = build_return_functions(program, callgraph, modref)
        kinds = [
            JumpFunctionKind.LITERAL,
            JumpFunctionKind.INTRAPROCEDURAL,
            JumpFunctionKind.PASS_THROUGH,
            JumpFunctionKind.POLYNOMIAL,
        ]
        tables = [
            build_forward_jump_functions(program, callgraph, kind, return_map)
            for kind in kinds
        ]
        for weaker, stronger in zip(tables, tables[1:]):
            for jf in weaker:
                if jf.constant is not None:
                    upgraded = stronger.lookup(jf.call, jf.target)
                    assert upgraded is not None
                    assert upgraded.constant == jf.constant


class TestTableQueries:
    def test_payload_counts(self):
        program, table = table_for(POLY_ARG, JumpFunctionKind.POLYNOMIAL)
        counts = table.payload_counts()
        assert counts["constant"] >= 1
        assert counts["polynomial"] >= 1
        assert sum(counts.values()) == len(table)

    def test_for_call(self):
        program, table = table_for(GLOBAL_FLOW, JumpFunctionKind.POLYNOMIAL)
        call = program.procedure("main").call_sites()[0]
        functions = table.for_call(call)
        assert len(functions) == 1  # one global, no formals

    def test_cost_model(self):
        program, table = table_for(POLY_ARG, JumpFunctionKind.POLYNOMIAL)
        jf = jf_for_formal(program, table, "b")
        assert jf.cost() >= 2  # polynomial with two terms
        constant_jf = jf_for_formal(program, table, "a")
        assert constant_jf.cost() == 1
