"""Procedure cloning extension tests."""

from repro.config import AnalysisConfig
from repro.ipcp.cloning import clone_for_constants

from tests.conftest import lower

CONFLICT = (
    "      PROGRAM MAIN\n"
    "      CALL C(4)\n      CALL C(4)\n      CALL C(8)\n      END\n"
    "      SUBROUTINE C(S)\n      A = S + 1\n      B = S + 2\n      END\n"
)


class TestCloning:
    def test_conflicting_edges_split(self):
        report = clone_for_constants(lower(CONFLICT))
        assert report.clones_created == 1
        assert report.constants_gained > 0

    def test_each_version_gets_its_constant(self):
        report = clone_for_constants(lower(CONFLICT))
        constants = report.final.constants
        values = set()
        for name in ("c", "c%clone1"):
            proc = report.final.program.procedure(name)
            values.add(constants.constants_of(name)[proc.formals[0]])
        assert values == {4, 8}

    def test_majority_group_keeps_original(self):
        report = clone_for_constants(lower(CONFLICT))
        original = report.final.program.procedure("c")
        # Two call sites agreed on 4: the original body serves them.
        assert (
            report.final.constants.constants_of("c")[original.formals[0]] == 4
        )

    def test_no_clone_when_edges_agree(self):
        report = clone_for_constants(
            lower(
                "      PROGRAM MAIN\n      CALL C(4)\n      CALL C(4)\n"
                "      END\n"
                "      SUBROUTINE C(S)\n      A = S\n      END\n"
            )
        )
        assert report.clones_created == 0
        assert report.final is report.base

    def test_no_clone_for_single_call_site(self):
        report = clone_for_constants(
            lower(
                "      PROGRAM MAIN\n      CALL C(4)\n      END\n"
                "      SUBROUTINE C(S)\n      A = S\n      END\n"
            )
        )
        assert report.clones_created == 0

    def test_clone_cap_respected(self):
        calls = "\n".join(f"      CALL C({v})" for v in range(10))
        text = (
            f"      PROGRAM MAIN\n{calls}\n      END\n"
            "      SUBROUTINE C(S)\n      A = S\n      END\n"
        )
        report = clone_for_constants(lower(text), max_clones_per_procedure=2)
        assert report.clones_created <= 2

    def test_globals_still_shared_after_cloning(self):
        text = (
            "      PROGRAM MAIN\n      COMMON /B/ G\n      G = 5\n"
            "      CALL C(1)\n      CALL C(2)\n      END\n"
            "      SUBROUTINE C(S)\n      COMMON /B/ G\n      A = G + S\n"
            "      END\n"
        )
        report = clone_for_constants(lower(text))
        g = report.final.program.scalar_globals()[0]
        for name in report.final.program.procedures:
            if name.startswith("c"):
                assert report.final.constants.constants_of(name).get(g) == 5

    def test_final_counts_at_least_base(self):
        report = clone_for_constants(lower(CONFLICT))
        assert (
            report.final.substituted_constants
            >= report.base.substituted_constants
        )
