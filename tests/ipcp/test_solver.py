"""Interprocedural propagation solver tests (§2)."""

import pytest

from repro.config import AnalysisConfig, JumpFunctionKind
from repro.ipcp.driver import prepare_program
from repro.ipcp.jump_functions import build_forward_jump_functions
from repro.ipcp.return_functions import build_return_functions
from repro.ipcp.solver import entry_domain, propagate

from tests.conftest import lower


def solve(text, kind=JumpFunctionKind.POLYNOMIAL, strategy="fifo"):
    program = lower(text)
    config = AnalysisConfig(jump_function=kind)
    callgraph, modref = prepare_program(program, config)
    return_map = build_return_functions(program, callgraph, modref)
    table = build_forward_jump_functions(program, callgraph, kind, return_map)
    result = propagate(program, callgraph, table, strategy=strategy)
    return program, result


DEEP_CHAIN = (
    "      PROGRAM MAIN\n      CALL C1(5)\n      END\n"
    "      SUBROUTINE C1(X)\n      CALL C2(X)\n      END\n"
    "      SUBROUTINE C2(X)\n      CALL C3(X)\n      END\n"
    "      SUBROUTINE C3(X)\n      Y = X\n      END\n"
)


class TestFixpoint:
    def test_single_edge_constant(self):
        program, result = solve(
            "      PROGRAM MAIN\n      CALL S(3)\n      END\n"
            "      SUBROUTINE S(K)\n      X = K\n      END\n"
        )
        s = program.procedure("s")
        assert result.constants.constants_of("s") == {s.formals[0]: 3}

    def test_deep_chain_propagates(self):
        program, result = solve(DEEP_CHAIN)
        for name in ("c1", "c2", "c3"):
            proc = program.procedure(name)
            assert result.constants.constants_of(name) == {proc.formals[0]: 5}

    def test_agreeing_edges_meet_to_constant(self):
        program, result = solve(
            "      PROGRAM MAIN\n      CALL S(3)\n      CALL S(3)\n      END\n"
            "      SUBROUTINE S(K)\n      X = K\n      END\n"
        )
        assert len(result.constants.constants_of("s")) == 1

    def test_conflicting_edges_meet_to_bottom(self):
        program, result = solve(
            "      PROGRAM MAIN\n      CALL S(3)\n      CALL S(4)\n      END\n"
            "      SUBROUTINE S(K)\n      X = K\n      END\n"
        )
        assert result.constants.constants_of("s") == {}
        s = program.procedure("s")
        assert result.constants.val_of("s", s.formals[0]).is_bottom

    def test_never_called_procedure_stays_top(self):
        program, result = solve(
            "      PROGRAM MAIN\n      X = 1\n      END\n"
            "      SUBROUTINE ORPHAN(K)\n      Y = K\n      END\n"
        )
        orphan = program.procedure("orphan")
        assert result.constants.val_of("orphan", orphan.formals[0]).is_top

    def test_called_only_from_dead_procedure_stays_top(self):
        program, result = solve(
            "      PROGRAM MAIN\n      X = 1\n      END\n"
            "      SUBROUTINE DEAD\n      CALL LEAF(9)\n      END\n"
            "      SUBROUTINE LEAF(K)\n      Y = K\n      END\n"
        )
        leaf = program.procedure("leaf")
        # LEAF's only caller is itself never called: the jump function
        # evaluates against DEAD's all-TOP VAL set, so LEAF keeps the
        # optimistic constant 9 (the paper: T means never invoked —
        # claiming 9 for an uninvoked procedure is vacuously sound).
        value = result.constants.val_of("leaf", leaf.formals[0])
        assert value.is_constant and value.value == 9

    def test_main_globals_are_bottom(self):
        program, result = solve(
            "      PROGRAM MAIN\n      COMMON /C/ G\n      X = G\n      END\n"
        )
        g = program.scalar_globals()[0]
        assert result.constants.val_of("main", g).is_bottom

    def test_recursion_converges(self):
        program, result = solve(
            "      PROGRAM MAIN\n      CALL R(10)\n      END\n"
            "      SUBROUTINE R(N)\n"
            "      IF (N .GT. 0) THEN\n      CALL R(N - 1)\n      ENDIF\n"
            "      END\n"
        )
        r = program.procedure("r")
        # Edges carry 10 and N-1: the meet is bottom (not a constant).
        assert result.constants.val_of("r", r.formals[0]).is_bottom

    def test_recursive_pass_through_keeps_constant(self):
        program, result = solve(
            "      PROGRAM MAIN\n      CALL R(10, 7)\n      END\n"
            "      SUBROUTINE R(N, V)\n"
            "      IF (N .GT. 0) THEN\n      CALL R(N - 1, V)\n      ENDIF\n"
            "      END\n"
        )
        r = program.procedure("r")
        assert result.constants.constants_of("r") == {r.formals[1]: 7}


class TestDomain:
    def test_entry_domain_contents(self):
        program, _ = solve(DEEP_CHAIN)
        c1 = program.procedure("c1")
        domain = entry_domain(c1, program)
        assert c1.formals[0] in domain

    def test_array_formals_excluded(self):
        program, result = solve(
            "      PROGRAM MAIN\n      INTEGER A(5)\n      CALL S(A, 1)\n"
            "      END\n"
            "      SUBROUTINE S(B, K)\n      INTEGER B(5)\n      B(1) = K\n"
            "      END\n"
        )
        s = program.procedure("s")
        domain = entry_domain(s, program)
        assert s.formals[0] not in domain  # the array
        assert s.formals[1] in domain


class TestStrategies:
    @pytest.mark.parametrize("strategy", ["fifo", "lifo", "priority"])
    def test_same_fixpoint(self, strategy):
        program, result = solve(DEEP_CHAIN, strategy=strategy)
        assert result.constants.constants_of("c3")

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            solve(DEEP_CHAIN, strategy="random")

    def test_stats_populated(self):
        _, result = solve(DEEP_CHAIN)
        assert result.stats.procedure_visits > 0
        assert result.stats.jump_function_evaluations > 0
        assert result.stats.lowerings > 0

    @pytest.mark.parametrize("strategy", ["lifo", "priority"])
    def test_fixpoint_parity_with_fifo_on_suite(self, strategy):
        from repro.suite.programs import SUITE_PROGRAM_NAMES, program_source

        def rendered(result, procedure_name):
            return {
                var.name: str(value)
                for var, value in result.constants.val_set(
                    procedure_name
                ).items()
            }

        for name in SUITE_PROGRAM_NAMES:
            text = program_source(name)
            program, fifo = solve(text)
            _, other = solve(text, strategy=strategy)
            for procedure in program:
                assert rendered(other, procedure.name) == (
                    rendered(fifo, procedure.name)
                ), f"{strategy} diverged from fifo on {name}/{procedure.name}"

    def test_priority_never_does_more_work_on_suite(self):
        """The topological wavefront (reverse postorder rank) visits
        callers before callees, so by the time a callee is popped its
        callers' VAL sets have usually settled — fewer re-visits than
        an arrival-order queue on every suite program."""
        from repro.suite.programs import SUITE_PROGRAM_NAMES, program_source

        for name in SUITE_PROGRAM_NAMES:
            text = program_source(name)
            _, fifo = solve(text)
            _, priority = solve(text, strategy="priority")
            assert priority.stats.procedure_visits <= (
                fifo.stats.procedure_visits
            ), f"priority regressed on {name}"

    def test_stats_record_strategy(self):
        _, result = solve(DEEP_CHAIN, strategy="priority")
        assert result.stats.strategy == "priority"


DIAMOND = (
    "      PROGRAM MAIN\n      CALL L(1)\n      CALL R(2)\n      END\n"
    "      SUBROUTINE L(X)\n      CALL B(X)\n      END\n"
    "      SUBROUTINE R(X)\n      CALL B(X)\n      END\n"
    "      SUBROUTINE B(X)\n      Y = X\n      END\n"
)


class TestDiamondRequeue:
    """Regression guard for the worklist's pending-set pruning.

    In a diamond (main -> l, r -> b) the shared callee b is pushed while
    already pending when both parents lower in the same wave.  If a pop
    ever failed to prune the pending set (the hazard the ``_Worklist``
    class exists to prevent), a later lowering of l or r could not
    re-queue b and b would keep a stale, unsoundly-constant VAL set."""

    @pytest.mark.parametrize("strategy", ["fifo", "lifo", "priority"])
    def test_shared_callee_sees_both_parents(self, strategy):
        program, result = solve(DIAMOND, strategy=strategy)
        b = program.procedure("b")
        # l passes 1 and r passes 2: b's formal must meet to bottom.
        assert result.constants.constants_of("b") == {}
        from repro.lattice import BOTTOM

        assert result.constants.val_set("b")[b.formals[0]] is BOTTOM

    @pytest.mark.parametrize("strategy", ["fifo", "lifo", "priority"])
    def test_agreeing_parents_stay_constant(self, strategy):
        agreeing = DIAMOND.replace("CALL R(2)", "CALL R(1)")
        program, result = solve(agreeing, strategy=strategy)
        b = program.procedure("b")
        assert result.constants.constants_of("b") == {b.formals[0]: 1}


class TestWorklist:
    class FakeProc:
        def __init__(self, name):
            self.name = name

    def make(self, strategy="fifo", names=("a", "b", "c")):
        from repro.ipcp.solver import _Worklist

        procs = [self.FakeProc(n) for n in names]
        rank = {p: i for i, p in enumerate(procs)}
        return _Worklist(strategy, rank), procs

    def test_duplicate_push_dropped(self):
        wl, (a, _, _) = self.make()
        assert wl.push(a) is True
        assert wl.push(a) is False
        assert len(wl) == 1

    @pytest.mark.parametrize("strategy", ["fifo", "lifo", "priority"])
    def test_pop_prunes_pending(self, strategy):
        wl, (a, b, _) = self.make(strategy)
        wl.push(a)
        wl.push(b)
        popped = wl.pop()
        assert wl.push(popped) is True, "popped item must be re-queueable"

    def test_fifo_order(self):
        wl, (a, b, c) = self.make("fifo")
        for p in (a, b, c):
            wl.push(p)
        assert [wl.pop(), wl.pop(), wl.pop()] == [a, b, c]

    def test_lifo_order(self):
        wl, (a, b, c) = self.make("lifo")
        for p in (a, b, c):
            wl.push(p)
        assert [wl.pop(), wl.pop(), wl.pop()] == [c, b, a]

    def test_priority_pops_lowest_rank(self):
        wl, (a, b, c) = self.make("priority")
        for p in (c, a, b):  # arrival order must not matter
            wl.push(p)
        assert [wl.pop(), wl.pop(), wl.pop()] == [a, b, c]

    def test_empty_is_falsy(self):
        wl, (a, _, _) = self.make()
        assert not wl
        wl.push(a)
        assert wl
        wl.pop()
        assert not wl
