"""Figure 1: the constant-propagation lattice and its meet rules."""

from hypothesis import given, strategies as st

from repro.ipcp.lattice import BOTTOM, TOP, const, depth_to_bottom, meet_all


def elements():
    return st.one_of(
        st.just(TOP),
        st.just(BOTTOM),
        st.integers(-100, 100).map(const),
    )


class TestMeetRules:
    """The exact rules of Figure 1."""

    def test_top_is_identity(self):
        for x in (TOP, BOTTOM, const(3)):
            assert TOP.meet(x) == x
            assert x.meet(TOP) == x

    def test_equal_constants(self):
        assert const(5).meet(const(5)) == const(5)

    def test_unequal_constants_give_bottom(self):
        assert const(5).meet(const(6)) == BOTTOM

    def test_bottom_absorbs(self):
        for x in (TOP, BOTTOM, const(3)):
            assert BOTTOM.meet(x) == BOTTOM
            assert x.meet(BOTTOM) == BOTTOM


class TestProperties:
    @given(elements(), elements())
    def test_commutative(self, a, b):
        assert a.meet(b) == b.meet(a)

    @given(elements(), elements(), elements())
    def test_associative(self, a, b, c):
        assert a.meet(b).meet(c) == a.meet(b.meet(c))

    @given(elements())
    def test_idempotent(self, a):
        assert a.meet(a) == a

    @given(elements(), elements())
    def test_meet_is_lower_bound(self, a, b):
        result = a.meet(b)
        assert result <= a
        assert result <= b

    @given(elements())
    def test_partial_order_reflexive(self, a):
        assert a <= a

    @given(elements(), elements())
    def test_lowering_bounded_by_two(self, a, b):
        """The bounded-depth property: meets only descend, and from TOP
        at most two levels exist."""
        result = a.meet(b)
        assert depth_to_bottom(result) <= depth_to_bottom(a)
        assert depth_to_bottom(result) <= depth_to_bottom(b)


class TestDepth:
    def test_depths(self):
        assert depth_to_bottom(TOP) == 2
        assert depth_to_bottom(const(0)) == 1
        assert depth_to_bottom(BOTTOM) == 0


class TestMeetAll:
    def test_empty_meet_is_top(self):
        assert meet_all([]) == TOP

    def test_all_equal_constants(self):
        assert meet_all([const(2), const(2), const(2)]) == const(2)

    def test_mixed_constants(self):
        assert meet_all([const(2), const(3)]) == BOTTOM

    def test_short_circuit_on_bottom(self):
        assert meet_all([BOTTOM, const(1)]) == BOTTOM


class TestValueBasics:
    def test_immutability(self):
        import pytest

        with pytest.raises(AttributeError):
            TOP.kind = "const"

    def test_repr(self):
        assert repr(TOP) == "T"
        assert repr(BOTTOM) == "_|_"
        assert repr(const(4)) == "const(4)"

    def test_flags(self):
        assert TOP.is_top and not TOP.is_constant
        assert BOTTOM.is_bottom
        assert const(1).is_constant and const(1).value == 1

    def test_hashable(self):
        assert len({TOP, BOTTOM, const(1), const(1)}) == 3
