"""Golden snapshots of linked multi-file projects.

Each project's linked analysis surface — symbol table, CONSTANTS,
substitution counts, optional provenance rendering, and the per-file
(unlinked) comparison — is compared verbatim against its committed
snapshot under ``projects/``. Regenerate intentional changes with
``pytest tests/golden --update-goldens`` and review the diff.

The corpus doubles as the acceptance demonstration for the linkage
layer: ``proj_cross_common`` must show a constant propagated across a
file boundary that per-file analysis reports as bottom.
"""

import os

import pytest

from repro.oracle.golden import (
    check_project_golden,
    golden_projects,
    render_project_snapshot,
    update_project_golden,
)

SNAPSHOT_DIR = os.path.join(os.path.dirname(__file__), "projects")

PROJECT_NAMES = sorted(golden_projects())


def test_corpus_is_large_enough():
    assert len(PROJECT_NAMES) >= 6


@pytest.mark.parametrize("name", PROJECT_NAMES)
def test_project_snapshot_matches(name, update_goldens):
    project = golden_projects()[name]
    if update_goldens:
        update_project_golden(SNAPSHOT_DIR, project)
        return
    problem = check_project_golden(SNAPSHOT_DIR, project)
    assert problem is None, problem


def test_every_snapshot_file_has_a_project():
    """No orphaned snapshot files (a renamed project must take its
    snapshot along)."""
    stored = {
        name[: -len(".golden")]
        for name in os.listdir(SNAPSHOT_DIR)
        if name.endswith(".golden")
    }
    assert stored == set(PROJECT_NAMES)


def test_snapshot_is_deterministic():
    project = golden_projects()["proj_cross_common"]
    assert render_project_snapshot(project) == render_project_snapshot(project)


def test_linkage_beats_per_file_analysis():
    """The acceptance criterion, asserted (not just snapshotted): the
    linked program propagates a constant across a file boundary that
    per-file closed-world analysis cannot see."""
    from repro.ipcp.driver import analyze_source_resilient
    from repro.linkage import analyze_linked_sources

    project = golden_projects()["proj_cross_common"]
    linked, link = analyze_linked_sources(list(project.files))
    assert linked is not None and not link.diagnostics.has_errors
    work = linked.constants.constants_of("work")
    assert any(var.name == "base" for var in work), work
    for filename, text in project.files:
        alone, _ = analyze_source_resilient(text, filename=filename)
        assert alone is None or alone.constants.total_pairs() == 0


def test_killing_pair_explain_crosses_files():
    from repro.linkage import analyze_linked_sources
    from repro.obs.provenance import build_provenance

    project = golden_projects()["proj_killing_pair"]
    linked, _ = analyze_linked_sources(list(project.files))
    rendering = build_provenance(linked).explain("n@work")
    assert "main.f" in rendering and "lib.f" in rendering
    assert "killed by meet" in rendering
