"""Golden-snapshot regression tests.

Each corpus program's full analysis surface (CONSTANTS, jump-function
payload classes, substitution counts, transformed source) is compared
verbatim against its committed snapshot. A mismatch means the analysis
changed behaviour: either fix the regression, or — for an intentional
precision change — regenerate with ``pytest tests/golden
--update-goldens`` and review the snapshot diff.
"""

import os

import pytest

from repro.oracle.golden import (
    check_golden,
    golden_programs,
    render_snapshot,
    snapshot_path,
    update_golden,
)

SNAPSHOT_DIR = os.path.join(os.path.dirname(__file__), "snapshots")

PROGRAM_NAMES = sorted(golden_programs())


def test_corpus_is_large_enough():
    assert len(PROGRAM_NAMES) >= 20


@pytest.mark.parametrize("name", PROGRAM_NAMES)
def test_snapshot_matches(name, update_goldens):
    program = golden_programs()[name]
    if update_goldens:
        update_golden(SNAPSHOT_DIR, program)
        return
    problem = check_golden(SNAPSHOT_DIR, program)
    assert problem is None, problem


def test_every_snapshot_file_has_a_program():
    """No orphaned snapshot files (a renamed program must take its
    snapshot along)."""
    stored = {
        name[: -len(".golden")]
        for name in os.listdir(SNAPSHOT_DIR)
        if name.endswith(".golden")
    }
    assert stored == set(PROGRAM_NAMES)


class TestUpdateRoundTrip:
    """The failing-then-passing --update-goldens workflow, demonstrated
    against a temporary snapshot directory."""

    def test_missing_then_updated_then_passing(self, tmp_path):
        program = golden_programs()["tri_program"]
        directory = str(tmp_path)
        # 1. No snapshot yet: the check fails and says how to fix it.
        problem = check_golden(directory, program)
        assert problem is not None
        assert "--update-goldens" in problem
        # 2. Regenerate: the stored file is exactly the rendered text.
        path = update_golden(directory, program)
        assert path == snapshot_path(directory, program.name)
        # 3. Now the check passes.
        assert check_golden(directory, program) is None

    def test_drifted_snapshot_fails_with_diff_then_update_heals(self, tmp_path):
        program = golden_programs()["tri_program"]
        directory = str(tmp_path)
        update_golden(directory, program)
        # Simulate an analysis behaviour change by corrupting the store.
        path = snapshot_path(directory, program.name)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("CONSTANTS(ghost) = {x=1}\n")
        problem = check_golden(directory, program)
        assert problem is not None
        assert "ghost" in problem  # the diff shows the drift
        update_golden(directory, program)
        assert check_golden(directory, program) is None

    def test_snapshot_is_deterministic(self):
        program = golden_programs()["suite_trfd"]
        assert render_snapshot(program) == render_snapshot(program)
