"""Call graph tests."""

from repro.callgraph.callgraph import build_call_graph

from tests.conftest import lower

CHAIN = (
    "      PROGRAM MAIN\n      CALL A\n      CALL A\n      END\n"
    "      SUBROUTINE A\n      CALL B\n      END\n"
    "      SUBROUTINE B\n      X = 1\n      END\n"
)

RECURSIVE = (
    "      PROGRAM MAIN\n      CALL A(3)\n      END\n"
    "      SUBROUTINE A(N)\n      IF (N .GT. 0) THEN\n      CALL B(N)\n"
    "      ENDIF\n      END\n"
    "      SUBROUTINE B(N)\n      CALL A(N - 1)\n      END\n"
    "      SUBROUTINE SELF(N)\n      IF (N .GT. 0) CALL SELF(N - 1)\n"
    "      END\n"
)


class TestStructure:
    def test_one_edge_per_call_site(self):
        graph = build_call_graph(lower(CHAIN))
        main = graph.program.procedure("main")
        assert len(graph.sites_from(main)) == 2  # two CALL A statements

    def test_callees_deduplicated(self):
        graph = build_call_graph(lower(CHAIN))
        main = graph.program.procedure("main")
        assert [c.name for c in graph.callees(main)] == ["a"]

    def test_callers(self):
        graph = build_call_graph(lower(CHAIN))
        b = graph.program.procedure("b")
        assert [c.name for c in graph.callers(b)] == ["a"]

    def test_sites_into(self):
        graph = build_call_graph(lower(CHAIN))
        a = graph.program.procedure("a")
        assert len(graph.sites_into(a)) == 2

    def test_site_for_call(self):
        program = lower(CHAIN)
        graph = build_call_graph(program)
        call = program.procedure("a").call_sites()[0]
        site = graph.site_for_call(call)
        assert site.caller.name == "a"
        assert site.callee.name == "b"


class TestOrders:
    def test_bottom_up_order_chain(self):
        graph = build_call_graph(lower(CHAIN))
        order = [p.name for p in graph.bottom_up_order()]
        assert order.index("b") < order.index("a") < order.index("main")

    def test_top_down_is_reverse(self):
        graph = build_call_graph(lower(CHAIN))
        assert graph.top_down_order() == list(reversed(graph.bottom_up_order()))

    def test_sccs_trivial(self):
        graph = build_call_graph(lower(CHAIN))
        assert all(len(c) == 1 for c in graph.sccs())

    def test_recursive_scc_detected(self):
        graph = build_call_graph(lower(RECURSIVE))
        sccs = graph.sccs()
        nontrivial = [c for c in sccs if len(c) > 1]
        assert len(nontrivial) == 1
        assert {p.name for p in nontrivial[0]} == {"a", "b"}

    def test_recursive_procedures_include_self_recursion(self):
        graph = build_call_graph(lower(RECURSIVE))
        names = {p.name for p in graph.recursive_procedures()}
        assert names == {"a", "b", "self"}

    def test_bottom_up_respects_condensation(self):
        graph = build_call_graph(lower(RECURSIVE))
        order = [p.name for p in graph.bottom_up_order()]
        # main calls the {a, b} SCC: both appear before main.
        assert order.index("a") < order.index("main")
        assert order.index("b") < order.index("main")

    def test_never_called_procedure_is_node(self):
        graph = build_call_graph(lower(RECURSIVE))
        self_proc = graph.program.procedure("self")
        external = [
            s for s in graph.sites_into(self_proc) if s.caller is not self_proc
        ]
        assert external == []


class TestReachability:
    def test_reachable_from_main(self):
        graph = build_call_graph(lower(CHAIN))
        names = {p.name for p in graph.reachable_from_main()}
        assert names == {"main", "a", "b"}

    def test_orphan_excluded(self):
        graph = build_call_graph(
            lower(
                "      PROGRAM MAIN\n      X = 1\n      END\n"
                "      SUBROUTINE ORPHAN\n      Y = 2\n      END\n"
            )
        )
        names = {p.name for p in graph.reachable_from_main()}
        assert names == {"main"}
