"""Whole-pipeline properties over randomly generated programs.

The central invariant is *soundness*: every ``(name, value)`` pair the
analyzer places in ``CONSTANTS(p)`` must hold at every run-time
invocation of ``p`` — checked by executing the program with the
reference interpreter and comparing entry snapshots. This exercises the
entire stack at once: parser, lowering, MOD/REF, SSA, value numbering,
return jump functions, forward jump functions, and the solver.

Secondary invariants: determinism, the jump-function power hierarchy
(more powerful kinds never substitute fewer references), and
configuration monotonicity (removing MOD or return information never
adds constants).
"""

import pytest
from hypothesis import HealthCheck, assume, given, settings, strategies as st

from repro.config import AnalysisConfig, JumpFunctionKind
from repro.frontend.parser import parse_source
from repro.frontend.source import SourceFile
from repro.ipcp.driver import analyze_program, analyze_source
from repro.ir.interp import run_program
from repro.ir.lowering import lower_module
from repro.suite.generator import GeneratorConfig, generate_program

#: Small generator shape keeps each case fast while still covering
#: branches, loops, reads, call chains, and globals.
FAST = GeneratorConfig(procedures=4, max_statements_per_procedure=8)

KINDS = list(JumpFunctionKind)

CONFIGS = [
    AnalysisConfig(),
    AnalysisConfig(use_mod=False),
    AnalysisConfig(use_return_functions=False),
    AnalysisConfig.complete_propagation(),
    AnalysisConfig(jump_function=JumpFunctionKind.PASS_THROUGH),
    AnalysisConfig(jump_function=JumpFunctionKind.LITERAL),
]


def fresh_program(source):
    return lower_module(parse_source(source), SourceFile("gen.f", source))


def execute(source, inputs):
    """Run a generated program; discard the (rare) cases whose nested
    loop/call structure multiplies into astronomically long — but finite
    — executions (the generator guarantees termination, not speed)."""
    from repro.ir.interp import InterpreterError

    try:
        return run_program(fresh_program(source), inputs=inputs, fuel=3_000_000)
    except InterpreterError:
        assume(False)


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(0, 10_000),
    inputs=st.lists(st.integers(-9, 9), min_size=0, max_size=20),
)
def test_soundness_of_every_configuration(seed, inputs):
    """CONSTANTS claims hold at runtime, under every configuration."""
    source = generate_program(seed, FAST)
    trace = execute(source, inputs)
    for config in CONFIGS:
        result = analyze_program(fresh_program(source), config)
        for procedure in result.program:
            claimed = result.constants.constants_of(procedure.name)
            if not claimed:
                continue
            violations = trace.constant_violations(procedure.name, claimed)
            assert violations == [], (config.describe(), violations)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_determinism(seed):
    """Identical source analyzes to identical counts and CONSTANTS."""
    source = generate_program(seed, FAST)
    first = analyze_source(source)
    second = analyze_source(source)
    assert first.substituted_constants == second.substituted_constants
    assert first.constants.total_pairs() == second.constants.total_pairs()


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_jump_function_hierarchy(seed):
    """§3.1: more powerful jump functions never find fewer constants."""
    source = generate_program(seed, FAST)
    counts = [
        analyze_source(
            source, AnalysisConfig(jump_function=kind)
        ).substituted_constants
        for kind in KINDS
    ]
    for weaker, stronger in zip(counts, counts[1:]):
        assert weaker <= stronger, (seed, counts)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_information_monotonicity(seed):
    """Removing MOD or return-function information never adds constants."""
    source = generate_program(seed, FAST)
    full = analyze_source(source).substituted_constants
    no_mod = analyze_source(
        source, AnalysisConfig(use_mod=False)
    ).substituted_constants
    no_ret = analyze_source(
        source, AnalysisConfig(use_return_functions=False)
    ).substituted_constants
    intra = analyze_source(
        source, AnalysisConfig.intraprocedural_only()
    ).substituted_constants
    assert no_mod <= full
    assert no_ret <= full
    assert intra <= full


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_complete_at_least_plain_on_live_code(seed):
    """Complete propagation never loses constants *in live code*. It can
    legitimately report fewer total substitutions than plain propagation
    when DCE orphans a whole procedure: the plain run substitutes inside
    the never-invoked body (vacuously sound), the complete run deletes
    its only call site — so the comparison is restricted to procedures
    still reachable from MAIN after DCE."""
    source = generate_program(seed, FAST)
    plain = analyze_source(source)
    complete = analyze_source(source, AnalysisConfig.complete_propagation())
    live = {p.name for p in complete.callgraph.reachable_from_main()}
    plain_live = sum(
        count
        for name, count in plain.substitution.per_procedure.items()
        if name in live
    )
    complete_live = sum(
        count
        for name, count in complete.substitution.per_procedure.items()
        if name in live
    )
    assert complete_live >= plain_live


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    inputs=st.lists(st.integers(-9, 9), min_size=0, max_size=10),
)
def test_transformed_source_preserves_behaviour(seed, inputs):
    """Substituting constants into the source must not change what the
    program prints."""
    source = generate_program(seed, FAST)
    original = execute(source, inputs)
    result = analyze_source(source, filename="gen.f")
    transformed = result.transformed_source()
    after = run_program(
        lower_module(
            parse_source(transformed, "gen.f"), SourceFile("gen.f", transformed)
        ),
        inputs=inputs,
        fuel=10_000_000,
    )
    assert after.output == original.output


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    inputs=st.lists(st.integers(-9, 9), min_size=0, max_size=10),
)
def test_complete_propagation_preserves_behaviour(seed, inputs):
    """Branch folding + dead-code removal under complete propagation,
    checked end to end: destruct the mutated SSA program and execute."""
    from repro.analysis.ssa_out import destruct_program

    source = generate_program(seed, FAST)
    original = execute(source, inputs)
    program = fresh_program(source)
    analyze_program(program, AnalysisConfig.complete_propagation())
    destruct_program(program)
    after = run_program(program, inputs=inputs, fuel=3_000_000)
    assert after.output == original.output


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_binding_graph_matches_worklist_solver(seed):
    """The binding multi-graph formulation reaches the same fixpoint as
    the call-graph worklist solver on arbitrary programs."""
    from repro.ipcp.binding_graph import propagate_binding_graph
    from repro.ipcp.driver import prepare_program
    from repro.ipcp.jump_functions import build_forward_jump_functions
    from repro.ipcp.return_functions import build_return_functions
    from repro.ipcp.solver import propagate

    source = generate_program(seed, FAST)
    program = fresh_program(source)
    config = AnalysisConfig()
    callgraph, modref = prepare_program(program, config)
    return_map = build_return_functions(program, callgraph, modref)
    table = build_forward_jump_functions(
        program, callgraph, config.jump_function, return_map
    )
    worklist = propagate(program, callgraph, table)
    binding = propagate_binding_graph(program, callgraph, table)
    for procedure in program:
        assert binding.constants.constants_of(
            procedure.name
        ) == worklist.constants.constants_of(procedure.name)


#: Characters chosen to break tokens in interesting ways: operators,
#: brackets, characters no MiniFortran token contains, and quotes (which
#: open unterminated strings).
MUTATION_CHARS = "()*+-=,.$%&!\"'#@;:?^~|<>"


def mutate(source, mutations):
    """Apply (position-fraction, char) character substitutions."""
    text = list(source)
    for fraction, char in mutations:
        if not text:
            break
        text[int(fraction * (len(text) - 1))] = char
    return "".join(text)


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(0, 10_000),
    mutations=st.lists(
        st.tuples(
            st.floats(0.0, 1.0, allow_nan=False),
            st.sampled_from(MUTATION_CHARS),
        ),
        min_size=1,
        max_size=8,
    ),
)
def test_resilient_frontend_survives_token_mutation(seed, mutations):
    """Fuzz invariant: randomly corrupted source either analyzes or is
    rejected with located diagnostics — never an AttributeError,
    RecursionError, IndexError, or hang out of the pipeline."""
    from repro.ipcp.driver import analyze_source_resilient

    source = mutate(generate_program(seed, FAST), mutations)
    result, diagnostics = analyze_source_resilient(source)
    for diagnostic in diagnostics:
        assert diagnostic.location is None or diagnostic.location.line >= 0
    if result is None:
        assert diagnostics.has_errors
    else:
        result.constants.format_report()  # reportable without crashing


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(0, 10_000),
    solver_fuel=st.integers(0, 40),
    poly_terms=st.integers(1, 3),
)
def test_degraded_runs_find_subset_of_full_constants(seed, solver_fuel, poly_terms):
    """Graceful degradation never *invents* constants: every
    (procedure, parameter) -> value pair a budget-starved run reports is
    reported identically by the unrestricted run (it may only rise to ⊤,
    mirroring ``test_constant_sets_nest_by_kind``)."""
    from repro.config import AnalysisBudget

    source = generate_program(seed, FAST)
    full = analyze_source(source)
    starved = analyze_source(
        source,
        AnalysisConfig(
            budget=AnalysisBudget(
                solver_visits=solver_fuel,
                polynomial_terms=poly_terms,
                polynomial_degree=1,
            )
        ),
    )
    full_pairs = {}
    for procedure in full.program:
        for var, value in full.constants.constants_of(procedure.name).items():
            full_pairs[(procedure.name, var.name)] = value
    for procedure in starved.program:
        for var, value in starved.constants.constants_of(procedure.name).items():
            key = (procedure.name, var.name)
            if key in full_pairs:
                assert full_pairs[key] == value, (seed, key)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_verifier_accepts_every_pipeline_stage(seed):
    """The structural verifier never flags a program the pipeline
    itself produced — before SSA, after SSA, and after complete
    propagation's DCE rounds."""
    from repro.ir.verify import verify_program

    source = generate_program(seed, FAST)
    program = fresh_program(source)
    verify_program(program, ssa=False, stage="lowering")
    result = analyze_program(
        program, AnalysisConfig.complete_propagation()
    )
    verify_program(result.program, ssa=True, stage="complete propagation")


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_constant_sets_nest_by_kind(seed):
    """§3.1's set-inclusion claim, stronger than count comparison: every
    (procedure, parameter, value) pair a weaker jump function proves is
    preserved by every stronger kind (it may only rise to ⊤ when a
    never-taken optimistic edge is involved — same value, never a
    different one)."""
    source = generate_program(seed, FAST)
    results = {}
    for kind in KINDS:
        result = analyze_program(
            fresh_program(source), AnalysisConfig(jump_function=kind)
        )
        pairs = {}
        for procedure in result.program:
            for var, value in result.constants.constants_of(procedure.name).items():
                pairs[(procedure.name, var.name)] = value
        results[kind] = pairs
    for weaker, stronger in zip(KINDS, KINDS[1:]):
        for key, value in results[weaker].items():
            if key in results[stronger]:
                assert results[stronger][key] == value, (seed, weaker, key)
