"""Per-request timelines: stage bucketing, the ring buffer, the
maybe_stage observer hook, and the offline artifact joiner."""

import json

import pytest

from repro import profiling
from repro.obs import timeline
from repro.obs.timeline import (
    RequestTimeline,
    TimelineRing,
    build_report,
    classify_artifact,
    classify_stage,
    load_artifact,
    parse_prometheus_histograms,
    render_report,
)


class TestClassifyStage:
    def test_parse_bucket(self):
        assert classify_stage("parse") == "parse"
        assert classify_stage("lower") == "parse"

    def test_solve_bucket(self):
        for name in ("prepare", "return_functions", "forward_functions",
                     "propagate", "substitution"):
            assert classify_stage(name) == "solve"

    def test_opt_bucket_covers_pass_spans(self):
        assert classify_stage("opt") == "opt"
        assert classify_stage("opt.sccp") == "opt"
        assert classify_stage("opt.destruct") == "opt"

    def test_nested_fingerprint_excluded(self):
        # fingerprint runs inside return_functions; counting it would
        # double-bill the solve bucket.
        assert classify_stage("fingerprint") is None

    def test_unknown_excluded(self):
        assert classify_stage("mystery") is None


class TestRequestTimeline:
    def test_buckets_sum_and_render_residual(self):
        t = RequestTimeline("r1", op="analyze", path="p.f", queue_s=0.010)
        t.record_stage("parse", 0.002)
        t.record_stage("lower", 0.001)
        t.record_stage("propagate", 0.005)
        t.record_stage("opt.sccp", 0.004)
        t.record_stage("fingerprint", 0.100)  # nested: must not count
        t.finish("ok")
        buckets = t.buckets()
        assert buckets["queue"] == pytest.approx(0.010)
        assert buckets["parse"] == pytest.approx(0.003)
        assert buckets["solve"] == pytest.approx(0.005)
        assert buckets["opt"] == pytest.approx(0.004)
        assert buckets["render"] >= 0.0

    def test_render_never_negative(self):
        t = RequestTimeline("r1")
        t.record_stage("parse", 1000.0)  # stage clock > wall clock
        t.finish("ok")
        assert t.buckets()["render"] == 0.0

    def test_repeated_stage_accumulates(self):
        t = RequestTimeline("r1")
        t.record_stage("propagate", 0.25)
        t.record_stage("propagate", 0.25)
        assert t.stages["propagate"] == pytest.approx(0.5)

    def test_entry_shape(self):
        t = RequestTimeline("r9", op="analyze", path="p.f", queue_s=0.001)
        t.finish("ok", replayed=True)
        entry = t.entry()
        assert entry["request_id"] == "r9"
        assert entry["op"] == "analyze"
        assert entry["status"] == "ok"
        assert entry["replayed"] is True
        for bucket in timeline.BUCKETS:
            assert isinstance(entry[f"{bucket}_ms"], float)
        assert entry["total_ms"] >= entry["queue_ms"]


class TestObserverStack:
    def test_push_pop_nesting(self):
        outer = RequestTimeline("outer")
        inner = RequestTimeline("inner")
        timeline.push_observer(outer)
        timeline.push_observer(inner)
        assert timeline.current_observer() is inner
        assert timeline.pop_observer() is inner
        assert timeline.current_observer() is outer
        assert timeline.pop_observer() is outer
        assert timeline.current_observer() is None

    def test_pop_without_push_raises(self):
        with pytest.raises(RuntimeError):
            timeline.pop_observer()

    def test_maybe_stage_feeds_observer(self):
        t = RequestTimeline("r1")
        timeline.push_observer(t)
        try:
            with profiling.maybe_stage(None, "propagate"):
                pass
        finally:
            timeline.pop_observer()
        assert "propagate" in t.stages
        assert t.stages["propagate"] >= 0.0

    def test_maybe_stage_without_observer_untouched(self):
        with profiling.maybe_stage(None, "propagate"):
            pass
        assert timeline.current_observer() is None


class TestTimelineRing:
    def test_capacity_evicts_oldest(self):
        ring = TimelineRing(capacity=3)
        for i in range(5):
            ring.add({"request_id": f"r{i}"})
        assert [e["request_id"] for e in ring.entries()] == ["r2", "r3", "r4"]
        assert ring.total_added == 5
        assert len(ring) == 3

    def test_limit_keeps_newest(self):
        ring = TimelineRing(capacity=10)
        for i in range(4):
            ring.add({"request_id": f"r{i}"})
        assert [e["request_id"] for e in ring.entries(limit=2)] == ["r2", "r3"]
        assert ring.entries(limit=0) == []

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            TimelineRing(capacity=0)


class TestClassifyArtifact:
    def test_trace_log_metrics_unknown(self):
        assert classify_artifact('{"traceEvents": []}') == "trace"
        assert classify_artifact(
            '{"v": 1, "event": "request.start", "ts": 1}'
        ) == "log"
        assert classify_artifact(
            "# HELP x\nrepro_runs_total 3\n"
        ) == "metrics"
        assert classify_artifact("") == "unknown"
        assert classify_artifact("{broken json") == "unknown"

    def test_pretty_printed_trace(self):
        text = json.dumps({"traceEvents": []}, indent=2)
        assert classify_artifact(text) == "trace"


class TestPrometheusHistograms:
    TEXT = "\n".join(
        [
            'repro_serve_request_seconds_bucket{le="0.01"} 2',
            'repro_serve_request_seconds_bucket{le="0.1"} 5',
            'repro_serve_request_seconds_bucket{le="+Inf"} 6',
            "repro_serve_request_seconds_count 6",
            "repro_serve_request_seconds_sum 1.5",
        ]
    )

    def test_decumulates_buckets(self):
        histograms = parse_prometheus_histograms(self.TEXT)
        payload = histograms["repro_serve_request_seconds"]
        assert payload["buckets"] == [0.01, 0.1]
        assert payload["counts"] == [2, 3, 1]
        assert payload["count"] == 6


def _write_artifacts(tmp_path):
    log_path = tmp_path / "serve.log"
    records = [
        {"v": 1, "ts": 1.0, "level": "info", "event": "request.start",
         "pid": 1, "request_id": "r000001", "trace_id": "s-1",
         "op": "analyze", "path": "p.f"},
        {"v": 1, "ts": 1.1, "level": "info", "event": "request.end",
         "pid": 1, "request_id": "r000001", "trace_id": "s-1",
         "op": "analyze", "path": "p.f", "status": "ok",
         "replayed": False, "queue_ms": 0.5, "parse_ms": 1.0,
         "solve_ms": 2.0, "opt_ms": 0.0, "render_ms": 0.5,
         "total_ms": 4.0},
        {"v": 1, "ts": 1.2, "level": "warn", "event": "request.slow",
         "pid": 1, "request_id": "r000001", "trace_id": "s-1",
         "total_ms": 4.0},
    ]
    log_path.write_text(
        "".join(json.dumps(r) + "\n" for r in records)
    )
    trace_path = tmp_path / "serve.trace.json"
    trace_path.write_text(json.dumps({
        "traceEvents": [
            {"name": "serve.request", "ph": "X", "pid": 1, "tid": 1,
             "ts": 0, "dur": 4000,
             "args": {"request_id": "r000001", "op": "analyze",
                      "path": "p.f"}},
            {"name": "request", "ph": "s", "pid": 1, "tid": 1, "ts": 0,
             "id": 77, "args": {"request_id": "r000001"}},
            {"name": "request", "ph": "t", "pid": 2, "tid": 1, "ts": 1,
             "id": 77},
            {"name": "request", "ph": "t", "pid": 3, "tid": 1, "ts": 2,
             "id": 77},
        ]
    }))
    metrics_path = tmp_path / "serve.prom"
    metrics_path.write_text(TestPrometheusHistograms.TEXT + "\n")
    return log_path, trace_path, metrics_path


class TestReport:
    def test_join_by_request_id(self, tmp_path):
        paths = _write_artifacts(tmp_path)
        artifacts = [load_artifact(str(p)) for p in paths]
        report = build_report(artifacts)
        (row,) = report["requests"]
        assert row["request_id"] == "r000001"
        assert row["op"] == "analyze"
        assert row["status"] == "ok"
        assert row["total_ms"] == 4.0
        assert row["trace_total_ms"] == 4.0
        assert row["workers"] == 2  # two distinct worker pids
        assert row["slow"] is True
        assert row["sources"] == "LT"
        assert "repro_serve_request_seconds" in report["histograms"]

    def test_render_contains_row_and_quantiles(self, tmp_path):
        paths = _write_artifacts(tmp_path)
        report = build_report([load_artifact(str(p)) for p in paths])
        text = render_report(report)
        assert "r000001" in text
        assert "LT!" in text
        assert "latency quantiles" in text
        assert "repro_serve_request_seconds" in text

    def test_empty_report(self):
        text = render_report(build_report([]))
        assert "no correlated requests" in text

    def test_log_only_join(self, tmp_path):
        log_path, _, _ = _write_artifacts(tmp_path)
        report = build_report([load_artifact(str(log_path))])
        (row,) = report["requests"]
        assert row["sources"] == "L"
        assert "workers" not in row
