"""Correlation context: global/thread layering, wire form, flow ids."""

import threading

import pytest

from repro.obs import context
from repro.obs.context import RequestContext, flow_id, from_ids


@pytest.fixture(autouse=True)
def _clean_context():
    context.clear()
    yield
    context.clear()


class TestRequestContext:
    def test_trace_id_defaults_to_request_id(self):
        ctx = RequestContext("r000001")
        assert ctx.trace_id == "r000001"

    def test_explicit_trace_id(self):
        ctx = RequestContext("r000001", "s-42")
        assert (ctx.request_id, ctx.trace_id) == ("r000001", "s-42")

    def test_wire_round_trip(self):
        ctx = RequestContext("r1", "t1")
        assert from_ids(ctx.ids()).ids() == ("r1", "t1")
        assert from_ids(None) is None
        assert context.current_ids() is None


class TestLayering:
    def test_empty_by_default(self):
        assert context.current() is None

    def test_set_context_covers_both_layers(self):
        ctx = RequestContext("r1")
        context.set_context(ctx)
        assert context.current() is ctx
        seen = []
        # a fresh thread has no TLS entry -> falls through to global
        thread = threading.Thread(target=lambda: seen.append(context.current()))
        thread.start()
        thread.join()
        assert seen == [ctx]

    def test_thread_context_shadows_global_locally_only(self):
        base = RequestContext("server")
        context.set_context(base)
        mine = RequestContext("r2")
        context.set_thread_context(mine)
        assert context.current() is mine
        seen = []
        thread = threading.Thread(target=lambda: seen.append(context.current()))
        thread.start()
        thread.join()
        assert seen == [base]  # sibling threads keep the global

    def test_clear_drops_both_layers(self):
        context.set_context(RequestContext("r1"))
        context.set_thread_context(RequestContext("r2"))
        context.clear()
        assert context.current() is None

    def test_concurrent_threads_are_isolated(self):
        context.set_context(RequestContext("server"))
        results = {}
        barrier = threading.Barrier(2)

        def worker(name):
            context.set_thread_context(RequestContext(name))
            barrier.wait()
            results[name] = context.current().request_id

        threads = [
            threading.Thread(target=worker, args=(f"r{i}",))
            for i in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert results == {"r0": "r0", "r1": "r1"}


class TestRequestScope:
    def test_scope_restores_previous(self):
        outer = RequestContext("outer")
        context.set_context(outer)
        with context.request("inner") as ctx:
            assert context.current() is ctx
            assert ctx.trace_id == "inner"
        assert context.current() is outer

    def test_thread_only_scope_leaves_global(self):
        outer = RequestContext("outer")
        context.set_context(outer)
        with context.request("inner", thread_only=True):
            seen = []
            thread = threading.Thread(
                target=lambda: seen.append(context.current())
            )
            thread.start()
            thread.join()
            assert seen == [outer]
        assert context.current() is outer

    def test_scope_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with context.request("doomed"):
                raise RuntimeError("boom")
        assert context.current() is None


class TestFlowId:
    def test_stable_and_nonzero(self):
        assert flow_id("r000001") == flow_id("r000001")
        assert flow_id("r000001") != flow_id("r000002")
        assert flow_id("r000001") > 0
        # the zero-hash corner maps to 1, never 0 (Chrome drops id=0
        # flows silently)
        assert flow_id("") >= 1

    def test_fits_uint32(self):
        for request_id in ("r1", "server", "cli-analyze", "x" * 100):
            assert 1 <= flow_id(request_id) <= 0xFFFFFFFF
