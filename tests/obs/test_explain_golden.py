"""CLI ``--explain`` golden derivation trees, cold/warm byte-identity."""

import pytest

from repro.cli import main
from tests.conftest import TRI_PROGRAM

#: MAIN's call passes X+Y (two polynomial terms); a one-term budget
#: demotes the jump function, and the demotion must show in the tree.
DEMOTED_PROGRAM = """
      PROGRAM MAIN
      CALL R(3, 4)
      END

      SUBROUTINE R(X, Y)
      INTEGER X, Y
      CALL Q(X + Y)
      RETURN
      END

      SUBROUTINE Q(M)
      INTEGER M
      PRINT *, M
      RETURN
      END
"""


@pytest.fixture
def tri_file(tmp_path):
    path = tmp_path / "tri.f"
    path.write_text(TRI_PROGRAM)
    return str(path)


@pytest.fixture
def demoted_file(tmp_path):
    path = tmp_path / "demoted.f"
    path.write_text(DEMOTED_PROGRAM)
    return str(path)


def _explain_section(output: str) -> str:
    marker = "--- explain "
    assert marker in output
    return output[output.index(marker):]


class TestGoldenDerivations:
    def test_constant_chain_golden(self, tri_file, capsys):
        assert main(["analyze", tri_file, "--explain", "g1@bar"]) == 0
        section = _explain_section(capsys.readouterr().out)
        expected = (
            f"--- explain g1@bar ---\n"
            f"g1@bar = 7 (constant)\n"
            f"`- foo: call bar @ {tri_file}:23:7 / g1 -- "
            f"J^g1[polynomial] = pass(g1) => 7\n"
            f"   `- g1@foo = 7 (constant)\n"
            f"      `- main: call foo @ {tri_file}:7:7 / g1 -- "
            f"J^g1[polynomial] = 7 => 7\n"
        )
        assert section == expected

    def test_literal_constant_golden(self, tri_file, capsys):
        assert main(["analyze", tri_file, "--explain", "x@foo"]) == 0
        section = _explain_section(capsys.readouterr().out)
        expected = (
            f"--- explain x@foo ---\n"
            f"x@foo = 100 (constant)\n"
            f"`- main: call foo @ {tri_file}:7:7 / x -- "
            f"J^x[polynomial] = 100 => 100\n"
        )
        assert section == expected

    def test_bottom_cell_golden_names_killing_site(self, tri_file, capsys):
        assert main(["analyze", tri_file, "--explain", "a@bar"]) == 0
        section = _explain_section(capsys.readouterr().out)
        expected = (
            f"--- explain a@bar ---\n"
            f"a@bar = _|_ (not constant)\n"
            f"|- foo: call bar @ {tri_file}:23:7 / a -- "
            f"J^a[polynomial] = _|_ => _|_\n"
            f"`- ! killed by meet: call site #1 contributes _|_ directly\n"
        )
        assert section == expected

    def test_demoted_cell_golden(self, demoted_file, capsys):
        assert main([
            "analyze", demoted_file, "--max-poly-terms", "1",
            "--explain", "m@q",
        ]) == 0
        section = _explain_section(capsys.readouterr().out)
        expected = (
            f"--- explain m@q ---\n"
            f"m@q = _|_ (not constant)\n"
            f"|- r: call q @ {demoted_file}:8:7 / m -- "
            f"J^m[pass_through] = _|_ => _|_\n"
            f"|  `- ! demoted: polynomial -> pass_through "
            f"(polynomial size exceeded its budget of 1 (2 terms))\n"
            f"`- ! killed by meet: call site #1 contributes _|_ directly\n"
        )
        assert section == expected

    def test_every_constant_in_running_example_explains(
        self, tri_file, capsys
    ):
        from repro.config import AnalysisConfig
        from repro.ipcp.driver import analyze_file

        result = analyze_file(tri_file, AnalysisConfig())
        for procedure in result.program:
            for var, value in result.constants.constants_of(
                procedure.name
            ).items():
                query = f"{var.name}@{procedure.name}"
                assert main(["analyze", tri_file, "--explain", query]) == 0
                out = capsys.readouterr().out
                assert f"{query} = {value} (constant)" in out


class TestExplainErrors:
    def test_unknown_cell_exits_with_diagnostics(self, tri_file, capsys):
        assert main(["analyze", tri_file, "--explain", "nope@bar"]) == 1
        err = capsys.readouterr().err
        assert "unknown cell" in err
        assert "g1@bar" in err  # suggests the known cells

    def test_malformed_query_exits_with_diagnostics(self, tri_file, capsys):
        assert main(["analyze", tri_file, "--explain", "noatsign"]) == 1
        assert "explain:" in capsys.readouterr().err


class TestColdWarmByteIdentity:
    def test_cached_replay_is_byte_identical(self, tri_file, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        queries = ["g1@bar", "a@bar", "g2@foo"]
        for query in queries:
            argv = [
                "analyze", tri_file, "--cache-dir", cache,
                "--explain", query,
            ]
            assert main(argv) == 0
            cold = capsys.readouterr().out
            assert main(argv) == 0
            warm = capsys.readouterr().out
            assert warm == cold, query

    def test_stale_payload_without_provenance_falls_through(
        self, tri_file, tmp_path, capsys
    ):
        """A run cached by a version that stored no provenance must not
        serve --explain; the CLI re-analyzes instead."""
        from repro.cli import _payload_serves

        class Args:
            dump_ir = False
            stats = False
            explain = "g1@bar"

        assert _payload_serves({"provenance": None}, Args()) is False
        assert _payload_serves({}, Args()) is False
        Args.explain = None
        assert _payload_serves({}, Args()) is True
