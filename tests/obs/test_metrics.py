"""Metrics registry: instruments, snapshot/delta/merge, Prometheus."""

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestInstruments:
    def test_counter_increments(self):
        counter = Counter("hits")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("hits").inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = Gauge("depth")
        gauge.set(3.0)
        gauge.inc()
        gauge.dec(2.0)
        assert gauge.value == 2.0

    def test_histogram_buckets(self):
        hist = Histogram("t", buckets=(1.0, 10.0))
        hist.observe(0.5)
        hist.observe(5.0)
        hist.observe(50.0)
        assert hist.counts == [1, 1, 1]  # <=1, <=10, +Inf
        assert hist.count == 3
        assert hist.sum == 55.5

    def test_histogram_needs_bounds(self):
        with pytest.raises(ValueError):
            Histogram("t", buckets=())


class TestRegistry:
    def test_get_or_create_is_stable(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_counters_view_sorted_nonzero(self):
        registry = MetricsRegistry()
        registry.inc("zebra", 2)
        registry.inc("alpha")
        registry.counter("silent")  # never incremented
        assert registry.counters() == {"alpha": 1, "zebra": 2}
        assert list(registry.counters()) == ["alpha", "zebra"]

    def test_value_of_unknown_is_zero(self):
        assert MetricsRegistry().value("nope") == 0

    def test_reset_clears_everything(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.gauge("g").set(1)
        registry.observe("h", 1.0)
        registry.reset()
        assert registry.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }


class TestSnapshotDeltaMerge:
    def test_delta_isolates_work_between_snapshots(self):
        registry = MetricsRegistry()
        registry.inc("parses", 3)
        base = registry.snapshot()
        registry.inc("parses", 2)
        registry.inc("lowerings")
        delta = registry.delta_since(base)
        assert delta["counters"] == {"parses": 2, "lowerings": 1}

    def test_delta_drops_zero_entries(self):
        registry = MetricsRegistry()
        registry.inc("parses", 3)
        delta = registry.delta_since(registry.snapshot())
        assert delta["counters"] == {}
        assert delta["histograms"] == {}

    def test_histogram_delta_subtracts(self):
        registry = MetricsRegistry()
        registry.observe("seconds", 0.002)
        base = registry.snapshot()
        registry.observe("seconds", 0.002)
        delta = registry.delta_since(base)
        assert delta["histograms"]["seconds"]["count"] == 1
        assert sum(delta["histograms"]["seconds"]["counts"]) == 1

    def test_merge_adds_counters_and_histograms(self):
        worker = MetricsRegistry()
        worker.inc("parses", 2)
        worker.observe("seconds", 1.5)
        parent = MetricsRegistry()
        parent.inc("parses")
        parent.merge(worker.delta_since({"counters": {}, "histograms": {}}))
        assert parent.value("parses") == 3
        assert parent.histogram("seconds").count == 1

    def test_merge_keeps_gauge_maximum(self):
        parent = MetricsRegistry()
        parent.gauge("pool").set(2)
        parent.merge({"gauges": {"pool": 5}})
        parent.merge({"gauges": {"pool": 1}})
        assert parent.gauge("pool").value == 5

    def test_snapshot_is_json_able(self):
        import json

        registry = MetricsRegistry()
        registry.inc("a")
        registry.gauge("g").set(2.5)
        registry.observe("h", 0.1)
        assert json.loads(json.dumps(registry.snapshot()))


class TestPrometheus:
    def test_counter_exposition(self):
        registry = MetricsRegistry()
        registry.inc("parses", 4)
        text = registry.to_prometheus()
        assert "# TYPE repro_parses counter" in text
        assert "repro_parses 4" in text
        assert text.endswith("\n")

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        registry.histogram("t", buckets=(1.0, 10.0))
        registry.observe("t", 0.5)
        registry.observe("t", 5.0)
        registry.observe("t", 50.0)
        text = registry.to_prometheus()
        assert 'repro_t_bucket{le="1"} 1' in text
        assert 'repro_t_bucket{le="10"} 2' in text
        assert 'repro_t_bucket{le="+Inf"} 3' in text
        assert "repro_t_count 3" in text

    def test_names_are_sanitized(self):
        registry = MetricsRegistry()
        registry.inc("weird-name.x")
        assert "repro_weird_name_x 1" in registry.to_prometheus()

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().to_prometheus() == ""


class TestDefaultRegistryShims:
    def test_profiling_shims_forward_to_registry(self):
        from repro import profiling
        from repro.obs import metrics

        profiling.reset_counters()
        profiling.bump("parses", 2)
        assert metrics.value("parses") == 2
        assert profiling.counter("parses") == 2
        assert profiling.global_counters() == {"parses": 2}
        profiling.reset_counters()
        assert metrics.value("parses") == 0

    def test_module_level_delta(self):
        from repro.obs import metrics

        metrics.reset()
        base = metrics.snapshot()
        metrics.inc("x")
        assert metrics.delta_since(base)["counters"] == {"x": 1}
        metrics.reset()


class TestQuantiles:
    """Exact boundary semantics of the bucket quantile (satellite:
    Histogram.quantile + batch --report percentiles build on these)."""

    @staticmethod
    def histogram(observations, buckets=(0.01, 0.1, 1.0)):
        hist = Histogram("t", buckets=buckets)
        for value in observations:
            hist.observe(value)
        return hist

    def test_empty_histogram_returns_none(self):
        assert Histogram("t", buckets=(1.0,)).quantile(0.5) is None

    def test_rejects_out_of_range(self):
        hist = self.histogram([0.5])
        with pytest.raises(ValueError):
            hist.quantile(-0.1)
        with pytest.raises(ValueError):
            hist.quantile(1.1)

    def test_single_observation_all_quantiles_same_bucket(self):
        hist = self.histogram([0.05])
        for q in (0.0, 0.5, 0.99, 1.0):
            assert hist.quantile(q) == 0.1

    def test_exact_bucket_boundary_counts_in_lower_bucket(self):
        # observe(0.01) lands in the <=0.01 bucket (le semantics)
        hist = self.histogram([0.01])
        assert hist.quantile(0.5) == 0.01

    def test_quantile_at_exact_cumulative_boundary(self):
        # 10 observations: 5 in <=0.01, 5 in <=0.1. target(p50) = 5.0
        # == cumulative of the first bucket -> its bound, not the next.
        hist = self.histogram([0.005] * 5 + [0.05] * 5)
        assert hist.quantile(0.5) == 0.01
        assert hist.quantile(0.51) == 0.1
        assert hist.quantile(1.0) == 0.1

    def test_q_zero_returns_first_populated_bucket(self):
        hist = self.histogram([0.05, 0.5])
        assert hist.quantile(0.0) == 0.1

    def test_overflow_clamps_to_last_finite_bound(self):
        # everything in +Inf: the histogram cannot say more than "past
        # the last bound" -- clamp instead of inventing a value
        hist = self.histogram([5.0, 10.0])
        assert hist.quantile(0.5) == 1.0
        assert hist.quantile(0.99) == 1.0

    def test_p99_distinguishes_tail(self):
        hist = self.histogram([0.005] * 99 + [0.5])
        assert hist.quantile(0.5) == 0.01
        assert hist.quantile(0.99) == 0.01  # target 99.0 == cumulative
        assert hist.quantile(0.995) == 1.0

    def test_percentiles_labels(self):
        hist = self.histogram([0.05])
        marks = hist.percentiles()
        assert set(marks) == {"p50", "p95", "p99"}
        assert marks["p50"] == 0.1
        assert self.histogram([0.05]).percentiles((0.25,)) == {"p25": 0.1}

    def test_quantile_from_counts_matches_live(self):
        from repro.obs.metrics import quantile_from_counts

        hist = self.histogram([0.005, 0.05, 0.5, 2.0])
        for q in (0.25, 0.5, 0.75, 0.99):
            assert quantile_from_counts(
                hist.buckets, hist.counts, hist.count, q
            ) == hist.quantile(q)

    def test_registry_get_histogram_is_readonly(self):
        registry = MetricsRegistry()
        assert registry.get_histogram("absent") is None
        created = registry.histogram("present")
        assert registry.get_histogram("present") is created
        assert registry.get_histogram("absent") is None  # still absent
