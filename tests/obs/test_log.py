"""Structured logging: envelope schema, levels, rate limiting,
correlation-id injection, zero-cost-when-disabled contract."""

import io
import json

import pytest

from repro.obs import context, log
from repro.obs.log import (
    LOG_SCHEMA_VERSION,
    Logger,
    read_records,
    validate_log_records,
)


@pytest.fixture(autouse=True)
def _logging_disabled():
    """Every test starts and ends with logging off and no context."""
    log.disable()
    context.clear()
    yield
    log.disable()
    context.clear()


def records_of(stream: io.StringIO):
    return [json.loads(line) for line in stream.getvalue().splitlines()]


class TestDisabledPath:
    def test_disabled_by_default(self):
        assert log.ENABLED is False
        assert log.active() is None

    def test_helpers_are_noops(self):
        log.info("ping", detail=1)
        log.debug("ping")
        log.warn("ping")
        log.error("ping")
        log.emit("info", "ping")  # must not raise, must not create state
        assert log.active() is None


class TestEnableDisable:
    def test_enable_installs_logger_and_flag(self):
        stream = io.StringIO()
        logger = log.enable(stream)
        assert log.ENABLED is True
        assert log.active() is logger

    def test_disable_returns_logger_and_clears_flag(self):
        stream = io.StringIO()
        logger = log.enable(stream)
        log.info("one")
        assert log.disable() is logger
        assert log.ENABLED is False
        assert logger.records_written == 1

    def test_reenable_replaces_previous_logger(self):
        first_stream = io.StringIO()
        first = log.enable(first_stream)
        second = log.enable(io.StringIO())
        assert first is not second
        assert log.active() is second

    def test_file_destination_writes_jsonl(self, tmp_path):
        path = tmp_path / "run.log"
        log.enable(str(path))
        log.info("request.start", op="analyze")
        log.disable()
        records = read_records(str(path))
        assert [record["event"] for record in records] == ["request.start"]
        assert validate_log_records(path.read_text().splitlines()) == []

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            Logger(io.StringIO(), level="loud")


class TestEnvelope:
    def test_record_shape(self):
        stream = io.StringIO()
        log.enable(stream, clock=lambda: 123.456789)
        log.info("cache.hit", path="p.f", count=3)
        (record,) = records_of(stream)
        assert record["v"] == LOG_SCHEMA_VERSION
        assert record["ts"] == 123.456789
        assert record["level"] == "info"
        assert record["event"] == "cache.hit"
        assert isinstance(record["pid"], int)
        assert record["path"] == "p.f"
        assert record["count"] == 3

    def test_no_context_falls_back_to_dash(self):
        stream = io.StringIO()
        log.enable(stream)
        log.info("orphan")
        (record,) = records_of(stream)
        assert record["request_id"] == "-"
        assert record["trace_id"] == "-"

    def test_context_ids_injected(self):
        stream = io.StringIO()
        log.enable(stream)
        with context.request("r000042", trace_id="s-1"):
            log.info("request.start")
        (record,) = records_of(stream)
        assert record["request_id"] == "r000042"
        assert record["trace_id"] == "s-1"

    def test_fields_may_override_correlation_but_not_envelope(self):
        # A handler thread attributes a shed record to the request it
        # rejected; it must not be able to forge the schema version.
        stream = io.StringIO()
        logger = log.enable(stream)
        logger.emit(
            "warn",
            "request.shed",
            {"request_id": "r000007", "v": 999, "event": "forged"},
        )
        (record,) = records_of(stream)
        assert record["request_id"] == "r000007"
        assert record["v"] == LOG_SCHEMA_VERSION
        assert record["event"] == "request.shed"

    def test_unserializable_field_degrades_to_str(self):
        stream = io.StringIO()
        log.enable(stream)
        log.info("odd", thing=object())
        (record,) = records_of(stream)
        assert "object object at" in record["thing"]


class TestLevels:
    def test_records_below_threshold_dropped(self):
        stream = io.StringIO()
        log.enable(stream, level="warn")
        log.debug("a")
        log.info("b")
        log.warn("c")
        log.error("d")
        assert [r["event"] for r in records_of(stream)] == ["c", "d"]

    def test_debug_level_keeps_everything(self):
        stream = io.StringIO()
        log.enable(stream, level="debug")
        log.debug("a")
        log.info("b")
        assert len(records_of(stream)) == 2


class TestRateLimit:
    def test_cap_then_suppression_summary(self):
        stream = io.StringIO()
        log.enable(stream, max_per_event=3)
        for _ in range(10):
            log.info("noisy", x=1)
        log.info("quiet")
        log.disable()
        records = records_of(stream)
        noisy = [r for r in records if r["event"] == "noisy"]
        assert len(noisy) == 3
        summary = [r for r in records if r["event"] == "log.suppressed"]
        assert len(summary) == 1
        assert summary[0]["suppressed_event"] == "noisy"
        assert summary[0]["dropped"] == 7
        assert summary[0]["level"] == "warn"
        # unthrottled events are unaffected
        assert any(r["event"] == "quiet" for r in records)

    def test_no_summary_when_nothing_suppressed(self):
        stream = io.StringIO()
        log.enable(stream, max_per_event=5)
        log.info("calm")
        log.disable()
        events = [r["event"] for r in records_of(stream)]
        assert "log.suppressed" not in events


class TestResilience:
    def test_write_failure_never_raises(self):
        class TornStream:
            def write(self, text):
                raise OSError("disk gone")

            def flush(self):
                raise OSError("disk gone")

        logger = log.enable(TornStream())
        log.info("doomed")  # must not raise
        assert logger.records_written == 0
        log.disable()  # finish() must also survive


class TestValidation:
    def test_flags_missing_fields_and_bad_json(self):
        lines = [
            "not json",
            json.dumps({"v": LOG_SCHEMA_VERSION, "level": "info"}),
            json.dumps({"v": 99, "ts": 1, "level": "info", "event": "e",
                        "pid": 1, "request_id": "r", "trace_id": "t"}),
            json.dumps({"v": LOG_SCHEMA_VERSION, "ts": 1, "level": "shout",
                        "event": "e", "pid": 1, "request_id": "",
                        "trace_id": "t"}),
        ]
        problems = validate_log_records(lines)
        assert any("not JSON" in p for p in problems)
        assert any("missing" in p for p in problems)
        assert any("schema version" in p for p in problems)
        assert any("unknown level" in p for p in problems)
        assert any("request_id" in p for p in problems)

    def test_blank_lines_ignored(self):
        assert validate_log_records(["", "   ", "\n"]) == []

    def test_real_output_validates_clean(self):
        stream = io.StringIO()
        log.enable(stream)
        with context.request("r1"):
            log.info("request.start", op="analyze")
            log.warn("request.slow", total_ms=12.5)
        log.disable()
        assert validate_log_records(stream.getvalue().splitlines()) == []
