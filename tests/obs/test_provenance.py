"""Constant provenance: derivation cells, killers, payload round-trip."""

import pytest

from repro.config import AnalysisBudget, AnalysisConfig
from repro.ipcp.driver import analyze_source
from repro.obs.provenance import (
    ConstantProvenance,
    build_provenance,
)
from tests.conftest import TRI_PROGRAM

#: Two call sites passing different literals: the classic killing meet.
CONFLICT_PROGRAM = """
      PROGRAM MAIN
      CALL P(1)
      CALL P(2)
      END

      SUBROUTINE P(K)
      INTEGER K
      PRINT *, K
      RETURN
      END
"""


@pytest.fixture(scope="module")
def tri_provenance():
    return build_provenance(analyze_source(TRI_PROGRAM))


class TestCells:
    def test_every_entry_cell_is_recorded(self, tri_provenance):
        assert tri_provenance.available() == [
            "a@bar", "g1@bar", "g1@foo", "g1@main", "g2@bar", "g2@foo",
            "g2@main", "x@foo", "y@foo",
        ]

    def test_constant_cells_match_val_sets(self, tri_provenance):
        result = analyze_source(TRI_PROGRAM)
        for procedure in result.program:
            for var, value in result.constants.constants_of(
                procedure.name
            ).items():
                cell = tri_provenance.cell(
                    f"{var.name}@{procedure.name}"
                )
                assert cell is not None
                assert cell["value"] == str(value), (var.name, procedure.name)

    def test_query_is_case_insensitive(self, tri_provenance):
        assert "x@foo = 100" in tri_provenance.explain("X@FOO")

    def test_malformed_query_raises(self, tri_provenance):
        with pytest.raises(ValueError):
            tri_provenance.explain("no-at-sign")

    def test_unknown_cell_lists_known_ones(self, tri_provenance):
        with pytest.raises(ValueError, match="x@foo"):
            tri_provenance.explain("zz@foo")


class TestDerivations:
    def test_chain_through_pass_through(self, tri_provenance):
        text = tri_provenance.explain("g1@bar")
        # g1 reaches bar through foo's pass-through from main's literal 7.
        assert "g1@bar = 7 (constant)" in text
        assert "pass(g1)" in text
        assert "g1@foo = 7 (constant)" in text
        assert "J^g1[polynomial] = 7 => 7" in text

    def test_main_cell_explains_initial_value(self, tri_provenance):
        text = tri_provenance.explain("g1@main")
        assert "uninitialized COMMON storage" in text

    def test_bottom_cell_names_its_killer(self, tri_provenance):
        text = tri_provenance.explain("a@bar")
        assert "killed by meet" in text

    def test_conflicting_sites_identified_as_pair(self):
        provenance = build_provenance(analyze_source(CONFLICT_PROGRAM))
        cell = provenance.cell("k@p")
        assert cell["killer"]["sites"] == [0, 1]
        text = provenance.explain("k@p")
        assert "1 from call site #1 meets 2 from call site #2" in text

    def test_demoted_site_carries_budget_note(self):
        source = """
      PROGRAM MAIN
      CALL R(3, 4)
      END

      SUBROUTINE R(X, Y)
      INTEGER X, Y
      CALL Q(X + Y)
      RETURN
      END

      SUBROUTINE Q(M)
      INTEGER M
      PRINT *, M
      RETURN
      END
"""
        config = AnalysisConfig(budget=AnalysisBudget(polynomial_terms=1))
        result = analyze_source(source, config)
        assert not result.resilience.ok
        text = build_provenance(result).explain("m@q")
        assert "demoted: polynomial -> pass_through" in text

    def test_support_names_are_sorted(self, tri_provenance):
        for cell in tri_provenance.cells.values():
            for site in cell.get("sites", []):
                support = site.get("support", [])
                assert support == sorted(support)


class TestPayloadRoundTrip:
    def test_explain_is_byte_identical_after_round_trip(self, tri_provenance):
        import json

        payload = json.loads(json.dumps(tri_provenance.to_payload()))
        replayed = ConstantProvenance.from_payload(payload)
        assert replayed is not None
        for key in tri_provenance.available():
            assert replayed.explain(key) == tri_provenance.explain(key)

    def test_from_payload_rejects_other_schemas(self):
        assert ConstantProvenance.from_payload(None) is None
        assert ConstantProvenance.from_payload({"schema_version": 99}) is None
        assert ConstantProvenance.from_payload("junk") is None

    def test_intraprocedural_run_has_no_cells(self):
        result = analyze_source(
            TRI_PROGRAM, AnalysisConfig.intraprocedural_only()
        )
        assert build_provenance(result).available() == []


class TestCachedRunCarriesProvenance:
    def test_record_and_replay_render_identically(self, tmp_path):
        from repro.engine import Engine

        engine = Engine(jobs=1, cache_dir=str(tmp_path / "cache"))
        try:
            config = AnalysisConfig()
            result = analyze_source(TRI_PROGRAM, config, engine=engine)
            engine.record_run(TRI_PROGRAM, config, result)
            payload = engine.cached_run(TRI_PROGRAM, config)
            assert payload is not None
            replayed = ConstantProvenance.from_payload(payload["provenance"])
            live = build_provenance(result)
            for key in live.available():
                assert replayed.explain(key) == live.explain(key)
        finally:
            engine.close()
