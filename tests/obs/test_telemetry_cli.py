"""CLI surface of request-scoped telemetry: ``--log`` on the one-shot
subcommands, cold/warm artifact determinism for ``optimize``, the batch
``--report`` percentile line, and ``repro obs report``."""

import json

import pytest

from repro.cli import main
from repro.obs import context, log, trace
from repro.obs.log import validate_log_records
from repro.obs.trace import validate_chrome_trace, validate_stitched_trace
from repro.testkit import TRI_PROGRAM


@pytest.fixture(autouse=True)
def _telemetry_reset():
    """CLI commands must leave no telemetry state behind; start each
    test clean too."""
    yield
    assert log.active() is None, "a command leaked an enabled logger"
    assert trace.active() is None, "a command leaked an enabled tracer"
    assert context.current() is None, "a command leaked a context"
    log.disable()
    trace.disable()
    context.clear()


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "prog.f"
    path.write_text(TRI_PROGRAM)
    return str(path)


class TestLogFlag:
    def test_analyze_log_file(self, program_file, tmp_path, capsys):
        log_path = tmp_path / "run.log"
        assert main(["analyze", program_file,
                     "--log", str(log_path)]) == 0
        err = capsys.readouterr().err
        assert f"[log written to {log_path}" in err
        lines = log_path.read_text().splitlines()
        assert validate_log_records(lines) == []
        records = [json.loads(line) for line in lines]
        assert [r["event"] for r in records] == ["cli.start", "cli.end"]
        assert all(r["request_id"] == "cli-analyze" for r in records)
        assert records[-1]["exit_code"] == 0

    def test_log_dash_goes_to_stderr(self, program_file, capsys):
        assert main(["analyze", program_file, "--log", "-"]) == 0
        captured = capsys.readouterr()
        log_lines = [line for line in captured.err.splitlines()
                     if line.startswith("{")]
        assert validate_log_records(log_lines) == []
        # stdout still carries the report, uncontaminated
        assert "CONSTANTS(" in captured.out
        assert not any(line.startswith("{")
                       for line in captured.out.splitlines())

    def test_exit_code_recorded_on_diagnostics(self, tmp_path, capsys):
        bad = tmp_path / "bad.f"
        bad.write_text("      GARBAGE\n")
        log_path = tmp_path / "run.log"
        assert main(["analyze", str(bad), "--log", str(log_path)]) == 1
        records = [json.loads(line)
                   for line in log_path.read_text().splitlines()]
        assert records[-1]["event"] == "cli.end"
        assert records[-1]["exit_code"] == 1

    def test_optimize_and_link_accept_log(self, program_file, tmp_path,
                                          capsys):
        for command in (["optimize", program_file],
                        ["link", program_file]):
            log_path = tmp_path / f"{command[0]}.log"
            assert main(command + ["--log", str(log_path)]) == 0
            records = [json.loads(line)
                       for line in log_path.read_text().splitlines()]
            assert records[0]["request_id"] == f"cli-{command[0]}"


class TestTraceCorrelation:
    def test_analyze_trace_has_flow_root(self, program_file, tmp_path,
                                         capsys):
        trace_path = tmp_path / "run.trace.json"
        assert main(["analyze", program_file,
                     "--trace", str(trace_path)]) == 0
        payload = json.loads(trace_path.read_text())
        assert validate_chrome_trace(payload) == []
        assert validate_stitched_trace(payload) == []
        events = payload["traceEvents"]
        (root,) = [e for e in events
                   if e.get("ph") == "X" and e["name"] == "analyze"]
        assert root["args"]["request_id"] == "cli-analyze"
        (start,) = [e for e in events if e.get("ph") == "s"]
        assert start["args"]["request_id"] == "cli-analyze"

    def test_batch_trace_stitches_worker_roots(self, tmp_path, capsys):
        paths = []
        for index in range(3):
            path = tmp_path / f"p{index}.f"
            path.write_text(TRI_PROGRAM)
            paths.append(str(path))
        trace_path = tmp_path / "batch.trace.json"
        log_path = tmp_path / "batch.log"
        assert main(["batch", *paths, "--jobs", "2",
                     "--trace", str(trace_path),
                     "--log", str(log_path)]) == 0
        payload = json.loads(trace_path.read_text())
        assert validate_chrome_trace(payload) == []
        assert validate_stitched_trace(payload) == []
        file_starts = [e for e in payload["traceEvents"]
                       if e.get("ph") == "s"
                       and (e.get("args") or {}).get(
                           "request_id", "").startswith("file:")]
        assert len(file_starts) == 3


class TestBatchReportPercentiles:
    def test_report_prints_quantile_line(self, tmp_path, capsys):
        paths = []
        for index in range(3):
            path = tmp_path / f"p{index}.f"
            path.write_text(TRI_PROGRAM)
            paths.append(str(path))
        assert main(["batch", *paths, "--report"]) == 0
        out = capsys.readouterr().out
        assert "--- metrics (aggregated) ---" in out
        (line,) = [l for l in out.splitlines()
                   if l.strip().startswith("batch_file_seconds")]
        assert "p50=" in line and "p95=" in line and "p99=" in line


class TestOptimizeArtifactDeterminism:
    """Satellite: cold vs warm ``repro optimize`` with --trace/--metrics
    must be byte-deterministic where the contract promises it."""

    def test_cold_warm_byte_identity(self, program_file, tmp_path,
                                     capsys):
        def run(tag):
            trace_path = tmp_path / f"{tag}.trace.json"
            metrics_path = tmp_path / f"{tag}.prom"
            ir_path = tmp_path / f"{tag}.ir"
            assert main([
                "optimize", program_file, "--cache",
                "--cache-dir", str(tmp_path / "cache"),
                "--trace", str(trace_path),
                "--metrics", str(metrics_path),
                "--output", str(ir_path),
            ]) == 0
            stdout = capsys.readouterr().out
            return trace_path, metrics_path, ir_path, stdout

        cold_trace, cold_metrics, cold_ir, cold_out = run("cold")
        warm_trace, warm_metrics, warm_ir, warm_out = run("warm")
        # the optimized IR is byte-identical cold vs warm
        assert cold_ir.read_bytes() == warm_ir.read_bytes()
        # stdout identical except the written-IR filename line
        def scrub(text):
            return [line for line in text.splitlines()
                    if not line.startswith("[optimized IR written")]
        assert scrub(cold_out) == scrub(warm_out)
        # warm trace replays from the opt cache: no live pass spans
        warm_events = json.loads(warm_trace.read_text())["traceEvents"]
        warm_names = [e["name"] for e in warm_events]
        assert "opt_cache.hit" in warm_names
        assert not any(name.startswith("opt.") for name in warm_names)
        cold_names = [e["name"] for e in
                      json.loads(cold_trace.read_text())["traceEvents"]]
        assert any(name.startswith("opt.") for name in cold_names)
        for path in (cold_trace, warm_trace):
            assert validate_chrome_trace(
                json.loads(path.read_text())) == []
        # both metrics artifacts parse as Prometheus text
        assert cold_metrics.read_text().strip()
        assert warm_metrics.read_text().strip()

    def test_warm_replay_is_itself_deterministic(self, program_file,
                                                 tmp_path, capsys):
        args = ["optimize", program_file, "--cache",
                "--cache-dir", str(tmp_path / "cache")]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        second = capsys.readouterr().out
        assert first == second


class TestObsReportCommand:
    def test_joins_cli_artifacts(self, program_file, tmp_path, capsys):
        log_path = tmp_path / "run.log"
        trace_path = tmp_path / "run.trace.json"
        assert main(["analyze", program_file, "--log", str(log_path),
                     "--trace", str(trace_path)]) == 0
        capsys.readouterr()
        assert main(["obs", "report", str(trace_path),
                     str(log_path)]) == 0
        out = capsys.readouterr().out
        assert "request" in out and "cli-analyze" in out

    def test_unknown_artifact_skipped_with_note(self, tmp_path, capsys):
        junk = tmp_path / "junk.bin"
        junk.write_text("\x00\x01 not telemetry")
        assert main(["obs", "report", str(junk)]) == 1
        captured = capsys.readouterr()
        assert "not a recognized" in captured.err
        assert "no usable artifacts" in captured.err

    def test_missing_file_errors(self, tmp_path, capsys):
        assert main(["obs", "report", str(tmp_path / "absent")]) == 2
        assert "cannot read" in capsys.readouterr().err
