"""Structured tracing: spans, instants, export, schema validation."""

import json

import pytest

from repro.obs import trace
from repro.obs.trace import _NULL_SPAN, Tracer, validate_chrome_trace


@pytest.fixture(autouse=True)
def _tracing_disabled():
    """Every test starts and ends with tracing off (module global)."""
    trace.disable()
    yield
    trace.disable()


class TestDisabledPath:
    def test_disabled_by_default(self):
        assert trace.ENABLED is False
        assert trace.active() is None

    def test_span_returns_shared_null_singleton(self):
        assert trace.span("anything") is _NULL_SPAN
        assert trace.span("other", attr=1) is _NULL_SPAN
        with trace.span("nested"):
            pass  # must be a usable no-op context manager

    def test_instant_is_noop(self):
        trace.instant("event", detail="ignored")  # must not raise


class TestEnableDisable:
    def test_enable_installs_fresh_tracer(self):
        tracer = trace.enable()
        assert trace.ENABLED is True
        assert trace.active() is tracer
        assert tracer.events == []
        assert trace.enable() is not tracer  # fresh per enable()

    def test_disable_returns_tracer_for_export(self):
        tracer = trace.enable()
        trace.instant("ping")
        assert trace.disable() is tracer
        assert trace.ENABLED is False
        assert len(tracer.events) == 1

    def test_session_brackets(self):
        with trace.session() as tracer:
            assert trace.active() is tracer
        assert trace.active() is None


class TestEvents:
    def test_instant_shape(self):
        with trace.session() as tracer:
            trace.instant("solver.meet_bottom", procedure="foo", name="x")
        (event,) = tracer.events
        assert event["ph"] == "i"
        assert event["s"] == "t"
        assert event["name"] == "solver.meet_bottom"
        assert event["args"] == {"procedure": "foo", "name": "x"}
        for field in ("ts", "pid", "tid"):
            assert isinstance(event[field], int)

    def test_span_records_complete_event(self):
        with trace.session() as tracer:
            with trace.span("stage.parse", file="a.f"):
                pass
        (event,) = tracer.events
        assert event["ph"] == "X"
        assert event["dur"] >= 0
        assert event["args"] == {"file": "a.f"}

    def test_spans_nest_in_order(self):
        with trace.session() as tracer:
            with trace.span("outer"):
                with trace.span("inner"):
                    pass
        names = [event["name"] for event in tracer.events]
        assert names == ["inner", "outer"]  # completion order
        inner, outer = tracer.events
        assert outer["ts"] <= inner["ts"]
        assert outer["ts"] + outer["dur"] >= inner["ts"] + inner["dur"]


class TestWorkerShipping:
    def test_events_since_marker(self):
        tracer = Tracer()
        tracer.instant("before")
        marker = tracer.event_count()
        tracer.instant("after")
        shipped = tracer.events_since(marker)
        assert [event["name"] for event in shipped] == ["after"]

    def test_adopt_keeps_worker_pid(self):
        parent = Tracer()
        parent.adopt([{"name": "w", "ph": "i", "s": "t", "ts": 1,
                       "pid": 99999, "tid": 1}])
        assert parent.events[0]["pid"] == 99999

    def test_events_pickle(self):
        import pickle

        with trace.session() as tracer:
            trace.instant("ping", n=1)
        assert pickle.loads(pickle.dumps(tracer.events)) == tracer.events


class TestChromeExport:
    def test_export_validates_and_labels_processes(self):
        with trace.session() as tracer:
            with trace.span("analysis"):
                trace.instant("cache.miss", namespace="ret")
        payload = tracer.to_chrome()
        assert validate_chrome_trace(payload) == []
        assert payload["displayTimeUnit"] == "ms"
        metadata = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        assert metadata[0]["args"]["name"] == "repro"

    def test_adopted_worker_gets_own_track_label(self):
        tracer = Tracer()
        tracer.instant("local")
        tracer.adopt([{"name": "w", "ph": "i", "s": "t", "ts": 1,
                       "pid": tracer.owner_pid + 1, "tid": 1}])
        payload = tracer.to_chrome()
        labels = {
            event["pid"]: event["args"]["name"]
            for event in payload["traceEvents"]
            if event["ph"] == "M"
        }
        assert labels[tracer.owner_pid] == "repro"
        assert "worker" in labels[tracer.owner_pid + 1]

    def test_export_is_json_serializable(self):
        with trace.session() as tracer:
            trace.instant("x", value=3)
        assert json.loads(json.dumps(tracer.to_chrome()))


class TestValidation:
    def test_rejects_non_dict(self):
        assert validate_chrome_trace([]) != []

    def test_rejects_missing_fields(self):
        payload = {"traceEvents": [{"ph": "i", "s": "t"}]}
        problems = validate_chrome_trace(payload)
        assert any("missing" in problem for problem in problems)

    def test_rejects_x_without_dur(self):
        payload = {
            "traceEvents": [
                {"name": "s", "ph": "X", "ts": 0, "pid": 1, "tid": 1}
            ]
        }
        assert any("dur" in p for p in validate_chrome_trace(payload))

    def test_rejects_partially_overlapping_spans(self):
        payload = {
            "traceEvents": [
                {"name": "a", "ph": "X", "ts": 0, "dur": 10,
                 "pid": 1, "tid": 1},
                {"name": "b", "ph": "X", "ts": 5, "dur": 10,
                 "pid": 1, "tid": 1},
            ]
        }
        assert any("nest" in p for p in validate_chrome_trace(payload))

    def test_accepts_sequential_and_nested_spans(self):
        payload = {
            "traceEvents": [
                {"name": "a", "ph": "X", "ts": 0, "dur": 10,
                 "pid": 1, "tid": 1},
                {"name": "a.1", "ph": "X", "ts": 2, "dur": 3,
                 "pid": 1, "tid": 1},
                {"name": "b", "ph": "X", "ts": 10, "dur": 5,
                 "pid": 1, "tid": 1},
            ]
        }
        assert validate_chrome_trace(payload) == []

    def test_separate_tracks_do_not_interact(self):
        payload = {
            "traceEvents": [
                {"name": "a", "ph": "X", "ts": 0, "dur": 10,
                 "pid": 1, "tid": 1},
                {"name": "b", "ph": "X", "ts": 5, "dur": 10,
                 "pid": 2, "tid": 1},
            ]
        }
        assert validate_chrome_trace(payload) == []


class TestPipelineEmitsEvents:
    def test_traced_analysis_produces_stage_spans(self):
        from repro.ipcp.driver import analyze_source
        from tests.conftest import TRI_PROGRAM

        with trace.session() as tracer:
            analyze_source(TRI_PROGRAM)
        names = {event["name"] for event in tracer.events}
        assert "stage.parse" in names
        assert "stage.propagate" in names
        assert "solver.visit" in names
        assert validate_chrome_trace(tracer.to_chrome()) == []

    def test_untraced_analysis_records_nothing(self):
        from repro.ipcp.driver import analyze_source
        from tests.conftest import TRI_PROGRAM

        tracer = trace.enable()
        trace.disable()
        analyze_source(TRI_PROGRAM)
        assert tracer.events == []


class TestFlowEvents:
    def test_flow_phases_and_finish_binding(self):
        tracer = trace.enable()
        trace.flow("request", "s", 42, request_id="r1")
        trace.flow("request", "t", 42)
        trace.flow("request", "f", 42)
        start, step, finish = tracer.events
        assert [e["ph"] for e in (start, step, finish)] == ["s", "t", "f"]
        assert all(e["id"] == 42 for e in tracer.events)
        assert start["args"] == {"request_id": "r1"}
        assert "bp" not in start and "bp" not in step
        assert finish["bp"] == "e"  # finish binds to the enclosing slice

    def test_flow_rejects_unknown_phase(self):
        tracer = trace.enable()
        with pytest.raises(ValueError):
            tracer.flow("request", "x", 1)

    def test_module_flow_is_noop_when_disabled(self):
        trace.flow("request", "s", 1)  # must not raise

    def test_flow_events_validate(self):
        tracer = trace.enable()
        trace.flow("request", "s", 7)
        trace.flow("request", "t", 7)
        trace.flow("request", "f", 7)
        assert validate_chrome_trace(tracer.to_chrome()) == []

    def test_validator_flags_flow_without_id(self):
        payload = {"traceEvents": [
            {"name": "request", "ph": "s", "ts": 0, "pid": 1, "tid": 1},
        ]}
        assert any("needs an 'id'" in p
                   for p in validate_chrome_trace(payload))

    def test_validator_flags_orphan_step(self):
        payload = {"traceEvents": [
            {"name": "request", "ph": "t", "ts": 0, "pid": 1, "tid": 1,
             "id": 9},
        ]}
        assert any("no matching 's'" in p
                   for p in validate_chrome_trace(payload))

    def test_validator_flags_duplicate_starts(self):
        payload = {"traceEvents": [
            {"name": "request", "ph": "s", "ts": 0, "pid": 1, "tid": 1,
             "id": 9},
            {"name": "request", "ph": "s", "ts": 1, "pid": 1, "tid": 1,
             "id": 9},
        ]}
        assert any("expected exactly one" in p
                   for p in validate_chrome_trace(payload))


class TestStitchedValidation:
    @staticmethod
    def _payload(worker_flow_events):
        from repro.obs.trace import validate_stitched_trace  # noqa: F401

        return {"traceEvents": [
            {"name": "process_name", "ph": "M", "ts": 0, "pid": 1,
             "tid": 0, "args": {"name": "repro"}},
            {"name": "process_name", "ph": "M", "ts": 0, "pid": 2,
             "tid": 0, "args": {"name": "repro worker 2"}},
            {"name": "serve.request", "ph": "X", "ts": 0, "dur": 100,
             "pid": 1, "tid": 1, "args": {"request_id": "r1"}},
            {"name": "request", "ph": "s", "ts": 0, "pid": 1, "tid": 1,
             "id": 5},
            {"name": "worker.task", "ph": "X", "ts": 10, "dur": 20,
             "pid": 2, "tid": 1},
        ] + worker_flow_events}

    def test_linked_worker_passes(self):
        from repro.obs.trace import validate_stitched_trace

        payload = self._payload([
            {"name": "request", "ph": "t", "ts": 11, "pid": 2, "tid": 1,
             "id": 5},
        ])
        assert validate_stitched_trace(payload) == []

    def test_unlinked_worker_flagged(self):
        from repro.obs.trace import validate_stitched_trace

        payload = self._payload([])
        assert any("no flow step" in p
                   for p in validate_stitched_trace(payload))

    def test_worker_own_start_counts_as_linkage(self):
        # batch file roots emit their "s" inside the pool worker
        from repro.obs.trace import validate_stitched_trace

        payload = self._payload([
            {"name": "request", "ph": "s", "ts": 11, "pid": 2, "tid": 1,
             "id": 6, "args": {"request_id": "file:b.f"}},
        ])
        assert validate_stitched_trace(payload) == []

    def test_workerless_trace_passes(self):
        from repro.obs.trace import validate_stitched_trace

        payload = {"traceEvents": [
            {"name": "analyze", "ph": "X", "ts": 0, "dur": 10, "pid": 1,
             "tid": 1},
        ]}
        assert validate_stitched_trace(payload) == []
