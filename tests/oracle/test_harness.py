"""Differential-harness tests: trials, properties, reports."""

import pytest

from repro.oracle.harness import (
    MONOTONICITY,
    PRESERVATION,
    SOUNDNESS,
    check_source,
    run_oracle,
    run_trial,
)
from repro.suite.generator import generate_case

CLEAN = (
    "      PROGRAM MAIN\n"
    "      N = 6\n"
    "      CALL S(N)\n"
    "      CALL S(N)\n"
    "      END\n"
    "\n"
    "      SUBROUTINE S(K)\n"
    "      A = K + 1\n"
    "      PRINT *, A\n"
    "      RETURN\n"
    "      END\n"
)


class TestCheckSource:
    def test_clean_program_has_no_discrepancies(self):
        assert check_source(CLEAN, []) == []

    def test_property_selection(self):
        assert check_source(CLEAN, [], properties=(SOUNDNESS,)) == []
        assert check_source(CLEAN, [], properties=(PRESERVATION,)) == []
        assert check_source(CLEAN, [], properties=(MONOTONICITY,)) == []

    def test_unsound_claim_is_reported(self):
        """Force a false CONSTANTS claim by faking the analysis: the
        trace side alone must expose the conflict."""
        from repro.ir.interp import run_source
        from repro.testkit import lower

        conflict = (
            "      PROGRAM MAIN\n"
            "      CALL C(4)\n"
            "      CALL C(8)\n"
            "      END\n"
            "      SUBROUTINE C(S)\n"
            "      A = S + 1\n"
            "      RETURN\n"
            "      END\n"
        )
        trace = run_source(conflict)
        program = lower(conflict)
        claim_var = next(
            formal for formal in program.procedure("c").formals
        )
        violations = trace.constant_violations("c", {claim_var: 4})
        assert len(violations) == 1
        assert "was 8" in violations[0]


class TestRunTrial:
    def test_trial_is_deterministic(self):
        first = run_trial(3)
        second = run_trial(3)
        assert first.source == second.source
        assert first.inputs == second.inputs
        assert first.discrepancies == second.discrepancies

    def test_trial_inputs_come_from_generated_case(self):
        from repro.oracle.harness import DEFAULT_ORACLE_CONFIG

        case = generate_case(3, DEFAULT_ORACLE_CONFIG)
        trial = run_trial(3)
        assert trial.inputs == case.inputs
        assert trial.source == case.source


class TestRunOracle:
    def test_small_campaign_passes_on_current_analysis(self):
        report = run_oracle(12, seed=0)
        assert report.ok, report.summary()
        assert report.trials == 12
        assert "12 trial(s)" in report.summary()

    def test_progress_callback_sees_every_trial(self):
        seen = []
        run_oracle(5, seed=100, progress=seen.append)
        assert [t.seed for t in seen] == [100, 101, 102, 103, 104]

    def test_failures_written_to_corpus(self, tmp_path, monkeypatch):
        """With a sabotaged analysis, the campaign fails, minimizes,
        and persists the counterexample."""
        from repro.lattice import LatticeValue
        from repro.oracle.corpus import load_corpus

        original = LatticeValue.meet

        def broken(self, other):
            if (
                self.is_constant
                and other.is_constant
                and self.value != other.value
            ):
                return self
            return original(self, other)

        monkeypatch.setattr(LatticeValue, "meet", broken)
        corpus_dir = str(tmp_path / "corpus")
        report = run_oracle(8, seed=0, corpus_dir=corpus_dir)
        assert not report.ok
        entries = load_corpus(corpus_dir)
        assert entries
        assert entries[0].property == "soundness"
        assert "PROGRAM" in entries[0].source
