"""Counterexample-minimizer tests (no analysis involved: predicates are
plain text properties, so the shrinking machinery is tested in
isolation)."""

from repro.oracle.minimize import (
    minimize_source,
    procedure_count,
    split_units,
    unit_name,
)

THREE_UNITS = (
    "      PROGRAM MAIN\n"
    "      X = 1\n"
    "      CALL A(X)\n"
    "      CALL B(X)\n"
    "      END\n"
    "\n"
    "      SUBROUTINE A(P)\n"
    "      Q = P + 1\n"
    "      RETURN\n"
    "      END\n"
    "\n"
    "      SUBROUTINE B(P)\n"
    "      R = P + 2\n"
    "      RETURN\n"
    "      END\n"
)


class TestSplitting:
    def test_split_units_counts_program_units(self):
        units = split_units(THREE_UNITS)
        assert len(units) == 3
        assert procedure_count(THREE_UNITS) == 3

    def test_endif_enddo_do_not_terminate_units(self):
        source = (
            "      PROGRAM MAIN\n"
            "      IF (1 .EQ. 1) THEN\n"
            "      ENDIF\n"
            "      DO I = 1, 2\n"
            "      ENDDO\n"
            "      END\n"
        )
        assert len(split_units(source)) == 1

    def test_unit_name(self):
        units = split_units(THREE_UNITS)
        assert unit_name(units[0]) == "MAIN"
        assert unit_name(units[1]) == "A"
        assert unit_name(units[2]) == "B"

    def test_function_unit_name(self):
        unit = ["      INTEGER FUNCTION FVAL(X)", "      FVAL = X", "      END"]
        assert unit_name(unit) == "FVAL"


class TestMinimize:
    def test_drops_unreferenced_procedure(self):
        # The discrepancy "mentions B" survives without A; A (and the
        # call to it) must be removed.
        failing = lambda text: "SUBROUTINE B" in text and "PROGRAM" in text
        minimized = minimize_source(THREE_UNITS, failing)
        assert "SUBROUTINE A" not in minimized
        assert "CALL A" not in minimized
        assert procedure_count(minimized) == 2

    def test_drops_irrelevant_statements(self):
        failing = lambda text: "CALL B" in text and "PROGRAM" in text
        minimized = minimize_source(THREE_UNITS, failing)
        assert "X = 1" not in minimized
        assert "Q = P + 1" not in minimized

    def test_removes_empty_block_shells(self):
        source = (
            "      PROGRAM MAIN\n"
            "      IF (1 .EQ. 1) THEN\n"
            "        Y = 2\n"
            "      ENDIF\n"
            "      PRINT *, 3\n"
            "      END\n"
        )
        failing = lambda text: "PRINT" in text and "PROGRAM" in text
        minimized = minimize_source(source, failing)
        assert "IF" not in minimized
        assert "ENDIF" not in minimized

    def test_unwraps_block_keeping_needed_body(self):
        source = (
            "      PROGRAM MAIN\n"
            "      IF (1 .EQ. 1) THEN\n"
            "        PRINT *, 3\n"
            "      ENDIF\n"
            "      END\n"
        )
        failing = lambda text: "PRINT" in text and "PROGRAM" in text
        minimized = minimize_source(source, failing)
        assert "PRINT" in minimized
        assert "IF" not in minimized

    def test_never_returns_non_failing_program(self):
        failing = lambda text: "CALL B" in text
        minimized = minimize_source(THREE_UNITS, failing)
        assert failing(minimized)

    def test_non_reproducing_input_returned_unchanged(self):
        assert minimize_source(THREE_UNITS, lambda text: False) == THREE_UNITS

    def test_minimized_program_still_parses(self):
        """Shrinking against a real predicate (program analyzes and
        still calls B) yields a valid program."""
        from repro.ipcp.driver import analyze_source

        def failing(text):
            if "CALL B" not in text:
                return False
            try:
                analyze_source(text)
            except Exception:
                return False
            return True

        minimized = minimize_source(THREE_UNITS, failing)
        assert failing(minimized)
        assert procedure_count(minimized) == 2
