"""Corpus persistence round-trips."""

import json
import os

from repro.oracle.corpus import CorpusEntry, load_corpus, write_failure

ENTRY = CorpusEntry(
    seed=42,
    property="soundness",
    source="      PROGRAM MAIN\n      END\n",
    inputs=(1, -2, 3),
    detail="p invocation 1: x was 8, analyzer claimed 4",
)


def test_write_creates_program_and_metadata(tmp_path):
    program_path, meta_path = write_failure(str(tmp_path), ENTRY)
    assert os.path.basename(program_path) == "seed42_soundness.f"
    with open(program_path) as handle:
        assert handle.read() == ENTRY.source
    with open(meta_path) as handle:
        metadata = json.load(handle)
    assert metadata["seed"] == 42
    assert metadata["inputs"] == [1, -2, 3]
    assert metadata["program"] == "seed42_soundness.f"
    assert "source" not in metadata  # program text lives in the .f file


def test_round_trip(tmp_path):
    write_failure(str(tmp_path), ENTRY)
    entries = load_corpus(str(tmp_path))
    assert entries == [ENTRY]


def test_load_missing_directory_is_empty():
    assert load_corpus("/nonexistent/oracle/corpus") == []


def test_multiple_entries_sorted(tmp_path):
    from dataclasses import replace

    write_failure(str(tmp_path), replace(ENTRY, seed=9))
    write_failure(str(tmp_path), replace(ENTRY, seed=10))
    entries = load_corpus(str(tmp_path))
    assert [entry.seed for entry in entries] == [10, 9]  # filename order
