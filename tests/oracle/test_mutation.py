"""The acceptance-level mutation check: deliberately breaking the
lattice ``meet()`` must make the oracle produce a small, minimized
counterexample — proof that the harness detects the class of bug it was
built for, and that the shrinker compresses random failures to
reviewable size."""

import pytest

from repro.lattice import LatticeValue
from repro.oracle.harness import run_oracle
from repro.oracle.minimize import procedure_count


@pytest.fixture
def broken_meet(monkeypatch):
    """ci ∧ cj (i ≠ j) wrongly keeps the first constant instead of
    dropping to ⊥ — the canonical unsound meet."""
    original = LatticeValue.meet

    def broken(self, other):
        if self.is_constant and other.is_constant and self.value != other.value:
            return self
        return original(self, other)

    monkeypatch.setattr(LatticeValue, "meet", broken)


def test_broken_meet_is_caught_and_minimized(broken_meet):
    report = run_oracle(10, seed=0)
    assert not report.ok, "oracle failed to catch an unsound meet()"
    # At least one failure is a soundness violation...
    assert any(
        d.property == "soundness"
        for failure in report.failures
        for d in failure.discrepancies
    )
    # ...and its minimized witness is tiny: at most MAIN + two callees.
    assert report.minimized, "failures were not minimized"
    smallest = min(procedure_count(text) for text in report.minimized.values())
    assert smallest <= 3, report.minimized


def test_oracle_passes_on_unbroken_analysis():
    """Control for the mutation check: same seeds, healthy meet()."""
    report = run_oracle(10, seed=0)
    assert report.ok, report.summary()
