"""Paper-data comparison tests: the measured suite must satisfy every
encoded paper relationship and correlate strongly in rank with the
published columns."""

import pytest

from repro.suite.paper_data import (
    PAPER_TABLE2,
    PAPER_TABLE3,
    compare_with_measured,
    spearman,
)
from repro.suite.programs import SUITE_PROGRAM_NAMES
from repro.suite.tables import compute_table2, compute_table3


class TestSpearman:
    def test_perfect_correlation(self):
        assert spearman([1, 2, 3, 4], [10, 20, 30, 40]) == pytest.approx(1.0)

    def test_perfect_anticorrelation(self):
        assert spearman([1, 2, 3], [9, 5, 1]) == pytest.approx(-1.0)

    def test_ties_handled(self):
        rho = spearman([1, 1, 2, 3], [5, 5, 6, 7])
        assert rho == pytest.approx(1.0)

    def test_constant_column(self):
        assert spearman([1, 1, 1], [1, 2, 3]) == 0.0


class TestPaperData:
    def test_tables_cover_suite(self):
        assert set(PAPER_TABLE2) == set(SUITE_PROGRAM_NAMES)
        assert set(PAPER_TABLE3) == set(SUITE_PROGRAM_NAMES)

    def test_paper_internal_consistency(self):
        # The transcription itself satisfies the paper's own claims.
        for name, row in PAPER_TABLE2.items():
            poly, pass_t, intra, literal, *_ = row
            assert poly == pass_t, name
            assert literal <= intra <= poly, name
        for name, row in PAPER_TABLE3.items():
            no_mod, with_mod, complete, intra = row
            assert no_mod <= with_mod, name
            assert complete >= with_mod, name
            assert intra <= with_mod, name


class TestShapeAgreement:
    @pytest.fixture(scope="class")
    def agreement(self):
        return compare_with_measured(compute_table2(), compute_table3())

    def test_no_violations(self, agreement):
        assert agreement.agrees, agreement.violations

    def test_rank_correlations_strong(self, agreement):
        # Modeled programs were scaled, not matched: rank order across
        # programs should still track the paper closely.
        for column, rho in agreement.rank_correlations.items():
            assert rho >= 0.8, (column, rho)

    def test_format_readable(self, agreement):
        text = agreement.format()
        assert "rank correlation" in text
        assert "every paper relationship holds" in text
