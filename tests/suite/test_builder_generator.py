"""Builder and random-generator tests."""

import pytest

from repro.config import AnalysisConfig
from repro.ipcp.driver import analyze_source
from repro.suite.builder import SuiteProgramBuilder
from repro.suite.generator import GeneratorConfig, generate_case, generate_program

from tests.conftest import lower


def analyze(text, config=None):
    return analyze_source(text, config or AnalysisConfig())


class TestBuilderPatterns:
    def test_literal_leaf_counts_for_all_kinds(self):
        b = SuiteProgramBuilder("t")
        b.literal_leaf(4, 9)
        source = b.build()
        from repro.config import JumpFunctionKind

        for kind in JumpFunctionKind:
            result = analyze(source, AnalysisConfig(jump_function=kind))
            assert result.substituted_constants == 4, kind

    def test_local_constants_counted_by_intra_only(self):
        b = SuiteProgramBuilder("t")
        b.local_constants(5, 3)
        result = analyze(b.build(), AnalysisConfig.intraprocedural_only())
        assert result.substituted_constants == 5

    def test_sinked_local_dies_without_mod(self):
        b = SuiteProgramBuilder("t")
        b.local_constants(5, 3, sink=True)
        with_mod = analyze(b.build())
        without = analyze(b.build(), AnalysisConfig(use_mod=False))
        # Only the references *after* the sink call die; the actual-
        # argument reference at the sink call (still constant
        # intraprocedurally) and RSINK's own V uses survive.
        assert with_mod.substituted_constants >= 5
        assert without.substituted_constants <= 3
        assert with_mod.substituted_constants - without.substituted_constants >= 5

    def test_intra_chain_missed_by_literal(self):
        from repro.config import JumpFunctionKind

        b = SuiteProgramBuilder("t")
        b.intra_chain(3, 7)
        literal = analyze(
            b.build(), AnalysisConfig(jump_function=JumpFunctionKind.LITERAL)
        )
        intra = analyze(
            b.build(),
            AnalysisConfig(jump_function=JumpFunctionKind.INTRAPROCEDURAL),
        )
        # literal finds only the X reference at the call site (an
        # intraprocedural constant); intra adds the 3 refs inside the
        # callee.
        assert literal.substituted_constants == 1
        assert intra.substituted_constants == 4

    def test_formal_chain_needs_pass_through(self):
        from repro.config import JumpFunctionKind

        b = SuiteProgramBuilder("t")
        b.formal_chain(3, 2, 5)
        intra = analyze(
            b.build(),
            AnalysisConfig(jump_function=JumpFunctionKind.INTRAPROCEDURAL),
        )
        passthrough = analyze(
            b.build(),
            AnalysisConfig(jump_function=JumpFunctionKind.PASS_THROUGH),
        )
        # intra: level-1 refs (2) + the constant actual at level 1's
        # call. pass-through: refs at all three levels (6) plus the two
        # forwarding actuals.
        assert intra.substituted_constants == 3
        assert passthrough.substituted_constants == 8

    def test_global_via_init_needs_returns(self):
        b = SuiteProgramBuilder("t")
        b.global_via_init((10,), 2, 3)
        with_returns = analyze(b.build())
        without = analyze(b.build(), AnalysisConfig(use_return_functions=False))
        assert with_returns.substituted_constants == 6
        assert without.substituted_constants == 0

    def test_function_returns_needs_returns(self):
        b = SuiteProgramBuilder("t")
        b.function_returns(3, 8)
        with_returns = analyze(b.build())
        without = analyze(b.build(), AnalysisConfig(use_return_functions=False))
        assert with_returns.substituted_constants == 3
        assert without.substituted_constants == 0

    def test_dead_branch_needs_complete(self):
        b = SuiteProgramBuilder("t")
        b.dead_branch_reveal(4, 1, 2)
        plain = analyze(b.build())
        complete = analyze(b.build(), AnalysisConfig.complete_propagation())
        assert complete.substituted_constants > plain.substituted_constants

    def test_conflict_calls_yield_nothing(self):
        b = SuiteProgramBuilder("t")
        b.conflict_calls((1, 2, 3))
        assert analyze(b.build()).substituted_constants == 0

    def test_noise_has_no_constants(self):
        b = SuiteProgramBuilder("t")
        b.noise_proc(20)
        assert analyze(b.build()).substituted_constants == 0

    def test_built_programs_parse_and_lower(self):
        b = SuiteProgramBuilder("t")
        b.local_constants(2, 1, sink=True)
        b.global_direct((1, 2), 2, 2, kill_from_worker=1)
        b.global_via_init((3,), 1, 1)
        b.formal_chain(2, 1, 4, fragile=True)
        b.function_returns(1, 5)
        b.dead_branch_reveal(1, 1, 2)
        b.conflict_calls((1, 2))
        b.noise_proc(5)
        program = lower(b.build())
        assert len(program) > 10


class TestGenerator:
    def test_deterministic(self):
        assert generate_program(7) == generate_program(7)

    def test_same_seed_byte_identical(self):
        """Two runs with the same seed produce byte-identical programs
        and input vectors — the whole oracle rests on this."""
        for seed in (0, 1, 99, 4096):
            first = generate_case(seed)
            second = generate_case(seed)
            assert first.source.encode() == second.source.encode(), seed
            assert first.inputs == second.inputs, seed

    def test_no_module_level_rng_state_consumed(self):
        """Generation must go through the explicit seeded Random only:
        the module-level random state is untouched, and polluting it
        does not change the generated program."""
        import random

        state = random.getstate()
        baseline = generate_case(11)
        assert random.getstate() == state
        random.seed(987654321)
        assert generate_case(11) == baseline

    def test_inputs_are_independent_of_program_stream(self):
        """The input vector draws from its own RNG stream, so the
        program text for a seed is exactly what generate_program has
        always produced."""
        case = generate_case(7)
        assert case.source == generate_program(7)

    def test_input_vector_respects_config_bounds(self):
        config = GeneratorConfig(max_inputs=4, input_range=(-2, 2))
        for seed in range(20):
            inputs = generate_case(seed, config).inputs
            assert len(inputs) <= 4
            assert all(-2 <= value <= 2 for value in inputs)

    def test_different_seeds_differ(self):
        assert generate_program(1) != generate_program(2)

    @pytest.mark.parametrize("seed", range(8))
    def test_generated_programs_lower(self, seed):
        program = lower(generate_program(seed))
        assert program.main is not None

    def test_config_scales_size(self):
        small = generate_program(3, GeneratorConfig(procedures=2))
        large = generate_program(3, GeneratorConfig(procedures=12))
        assert len(large) > len(small)

    def test_generated_programs_terminate(self):
        from repro.ir.interp import run_source

        for seed in range(5):
            trace = run_source(
                generate_program(seed), inputs=[3, 1, 4] * 30, fuel=3_000_000
            )
            assert trace.steps > 0
