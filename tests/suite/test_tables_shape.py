"""Reproduction shape tests: the measured Tables 1-3 must show every
qualitative relationship the paper reports.

Absolute counts are scaled (our suite programs are modeled stand-ins for
SPEC/PERFECT), so assertions are about orderings, equalities, and rough
ratios — "who wins, by roughly what factor, where crossovers fall".

These are the slowest tests in the suite (they run 10 configurations per
program); the full-matrix computations are cached per session.
"""

import pytest

from repro.suite.characteristics import characterize_suite
from repro.suite.programs import SUITE_PROGRAM_NAMES
from repro.suite.tables import compute_table2, compute_table3


@pytest.fixture(scope="module")
def table2():
    return {row.program: row for row in compute_table2()}


@pytest.fixture(scope="module")
def table3():
    return {row.program: row for row in compute_table3()}


@pytest.fixture(scope="module")
def table1():
    return characterize_suite()


class TestTable1:
    def test_all_programs_present(self, table1):
        assert list(table1) == SUITE_PROGRAM_NAMES

    def test_sizes_reasonable(self, table1):
        for row in table1.values():
            assert row.lines > 40
            assert row.procedures >= 5

    def test_trfd_smallest(self, table1):
        smallest = min(table1.values(), key=lambda r: r.lines)
        assert smallest.name == "trfd"

    def test_fpppp_and_simple_skewed(self, table1):
        # "a single routine made up a large part of the code in fpppp
        # and simple"
        assert table1["fpppp"].skewed
        assert table1["simple"].skewed

    def test_most_programs_evenly_distributed(self, table1):
        even = [name for name, row in table1.items() if not row.skewed]
        assert len(even) >= 7


class TestTable2Orderings:
    """The paper's universal orderings."""

    def test_poly_equals_pass_through(self, table2):
        # "the polynomial and pass-through parameter techniques found
        # the same set of constants"
        for row in table2.values():
            assert row.polynomial == row.pass_through, row.program

    def test_poly_equals_pass_without_returns_too(self, table2):
        for row in table2.values():
            assert row.polynomial_no_returns == row.pass_through_no_returns

    def test_pass_at_least_intra(self, table2):
        for row in table2.values():
            assert row.pass_through >= row.intraprocedural, row.program

    def test_intra_at_least_literal(self, table2):
        for row in table2.values():
            assert row.intraprocedural >= row.literal, row.program

    def test_returns_never_hurt(self, table2):
        for row in table2.values():
            assert row.polynomial >= row.polynomial_no_returns, row.program


class TestTable2ProgramShapes:
    """Per-program relationships the paper highlights."""

    def test_flat_programs(self, table2):
        # adm, qcd, trfd: every jump function ties.
        for name in ("adm", "qcd", "trfd"):
            row = table2[name]
            assert row.literal == row.intraprocedural == row.polynomial, name

    def test_staircase_programs(self, table2):
        # fpppp, matrix300, mdg, simple: strictly increasing power pays.
        for name in ("fpppp", "matrix300", "mdg", "simple"):
            row = table2[name]
            assert row.literal < row.intraprocedural < row.pass_through, name

    def test_literal_gap_programs(self, table2):
        # linpackd, snasa7, spec77, ocean: literal loses badly but the
        # other kinds tie.
        for name in ("linpackd", "snasa7", "spec77", "ocean"):
            row = table2[name]
            assert row.literal < row.intraprocedural == row.polynomial, name
        assert table2["linpackd"].literal <= 0.65 * table2["linpackd"].polynomial

    def test_ocean_returns_tripling(self, table2):
        # "In ocean, the return jump functions more than tripled the
        # number of constants"
        row = table2["ocean"]
        assert row.polynomial >= 2.5 * row.polynomial_no_returns

    def test_returns_barely_matter_elsewhere(self, table2):
        # "Return jump functions made no noticeable difference in ten of
        # the thirteen programs" — allow small deltas outside ocean.
        for name, row in table2.items():
            if name == "ocean":
                continue
            assert row.polynomial - row.polynomial_no_returns <= 8, name

    def test_doduc_mostly_literal(self, table2):
        # doduc's constants are literal actuals: literal within 1% of poly.
        row = table2["doduc"]
        assert row.literal >= 0.98 * row.polynomial


class TestTable3Shapes:
    def test_mod_never_hurts(self, table3):
        for row in table3.values():
            assert row.polynomial_with_mod >= row.polynomial_without_mod, row.program

    def test_complete_at_least_with_mod(self, table3):
        for row in table3.values():
            assert row.complete_propagation >= row.polynomial_with_mod, row.program

    def test_interprocedural_at_least_intraprocedural(self, table3):
        # "the interprocedural propagation always detected more
        # constants than strictly intraprocedural propagation"
        for row in table3.values():
            assert row.polynomial_with_mod >= row.intraprocedural, row.program

    def test_mod_loss_striking_programs(self, table3):
        # "particularly striking in adm, linpackd, matrix300, ocean,
        # simple, and spec77"
        for name in ("adm", "linpackd", "matrix300", "ocean", "simple", "spec77"):
            row = table3[name]
            assert row.polynomial_without_mod <= 0.65 * row.polynomial_with_mod, name

    def test_simple_nomod_catastrophe(self, table3):
        # simple: 183 -> 2 in the paper; ours collapses below 10%.
        row = table3["simple"]
        assert row.polynomial_without_mod <= 0.10 * row.polynomial_with_mod

    def test_doduc_nomod_immune(self, table3):
        # doduc: 288 vs 289 — virtually immune.
        row = table3["doduc"]
        assert row.polynomial_without_mod >= 0.98 * row.polynomial_with_mod

    def test_complete_gains_only_where_expected(self, table3):
        # ocean (+10) and spec77 (+4) gain; everywhere else complete
        # propagation "did not expose many additional constants".
        assert table3["ocean"].complete_propagation > table3["ocean"].polynomial_with_mod
        assert table3["spec77"].complete_propagation > table3["spec77"].polynomial_with_mod
        for name, row in table3.items():
            if name in ("ocean", "spec77"):
                continue
            assert row.complete_propagation == row.polynomial_with_mod, name

    def test_doduc_intraprocedural_collapse(self, table3):
        # doduc: 289 interprocedural vs 3 intraprocedural-only.
        row = table3["doduc"]
        assert row.intraprocedural <= 0.05 * row.polynomial_with_mod

    def test_qcd_mostly_intraprocedural(self, table3):
        # qcd: 180 vs 179 — interprocedural machinery nearly irrelevant.
        row = table3["qcd"]
        assert row.intraprocedural >= 0.95 * row.polynomial_with_mod
