"""Unit tests for the table harness itself (fast: single-program runs)."""

from repro.config import AnalysisConfig, JumpFunctionKind
from repro.suite.characteristics import ProgramCharacteristics, characterize
from repro.suite.programs import SUITE_PROGRAM_NAMES, program_source, suite_sources
from repro.suite.tables import (
    compute_table2,
    compute_table3,
    format_table1,
    format_table2,
    format_table3,
    run_configuration,
)


class TestPrograms:
    def test_names_match_paper_order(self):
        assert SUITE_PROGRAM_NAMES == [
            "adm", "doduc", "fpppp", "linpackd", "matrix300", "mdg",
            "ocean", "qcd", "simple", "snasa7", "spec77", "trfd",
        ]

    def test_sources_cached(self):
        assert program_source("trfd") is program_source("trfd")

    def test_suite_sources_complete(self):
        sources = suite_sources()
        assert list(sources) == SUITE_PROGRAM_NAMES
        assert all(text.startswith("      PROGRAM MAIN") for text in sources.values())


class TestRunConfiguration:
    def test_returns_cell_value(self):
        count = run_configuration("trfd", AnalysisConfig())
        assert isinstance(count, int) and count > 0

    def test_independent_runs_do_not_interfere(self):
        first = run_configuration("trfd", AnalysisConfig())
        run_configuration("trfd", AnalysisConfig.complete_propagation())
        second = run_configuration("trfd", AnalysisConfig())
        assert first == second


class TestRowComputation:
    def test_table2_single_program(self):
        (row,) = compute_table2(["trfd"])
        assert row.program == "trfd"
        assert row.polynomial == row.pass_through
        assert row.literal <= row.intraprocedural <= row.polynomial

    def test_table3_single_program(self):
        (row,) = compute_table3(["trfd"])
        assert row.polynomial_without_mod <= row.polynomial_with_mod
        assert row.complete_propagation >= row.polynomial_with_mod


class TestFormatting:
    def test_format_table1_contains_programs(self):
        text = format_table1()
        for name in SUITE_PROGRAM_NAMES:
            assert name in text

    def test_format_table2_from_rows(self):
        rows = compute_table2(["trfd"])
        text = format_table2(rows=rows)
        assert "trfd" in text
        assert "Poly" in text

    def test_format_table3_from_rows(self):
        rows = compute_table3(["trfd"])
        text = format_table3(rows=rows)
        assert "With MOD" in text


class TestCharacteristics:
    def test_characterize_custom_source(self):
        row = characterize(
            "tiny",
            source=(
                "      PROGRAM MAIN\nC note\n      X = 1\n      END\n"
                "      SUBROUTINE S\n      Y = 2\n      END\n"
            ),
        )
        assert isinstance(row, ProgramCharacteristics)
        assert row.procedures == 2
        assert row.lines == 6  # comment excluded

    def test_skew_flag(self):
        row = ProgramCharacteristics("x", 100, 4, 40.0, 10.0)
        assert row.skewed
        even = ProgramCharacteristics("y", 100, 4, 12.0, 10.0)
        assert not even.skewed
