"""The layered scale-tier generator: deterministic, stream-separated
from the classic generator (whose per-seed text is frozen forever),
acyclic by construction, O(N) in practice, and its output analyzes
cleanly with real interprocedural constants to find."""

from __future__ import annotations

import re
import time

import pytest

from repro.config import AnalysisConfig
from repro.ipcp.driver import analyze_source
from repro.suite.generator import (
    GeneratorConfig,
    ScaleConfig,
    generate_program,
    generate_scaled_program,
)


class TestDeterminism:
    def test_same_seed_same_bytes(self):
        config = ScaleConfig(procedures=400)
        assert generate_scaled_program(11, config) == generate_scaled_program(
            11, config
        )

    def test_different_seeds_differ(self):
        config = ScaleConfig(procedures=400)
        assert generate_scaled_program(1, config) != generate_scaled_program(
            2, config
        )

    def test_stream_is_independent_of_classic_generator(self):
        # Same seed, distinct stream: the classic program text must not
        # change because the scale tier exists (it is frozen by golden
        # and oracle history).
        classic = generate_program(5, GeneratorConfig(procedures=20))
        scaled = generate_scaled_program(5, ScaleConfig(procedures=20))
        assert classic != scaled


class TestStructure:
    def test_calls_are_acyclic_and_layered(self):
        config = ScaleConfig(procedures=300, layer_width=32)
        text = generate_scaled_program(3, config)
        unit = None
        for line in text.splitlines():
            header = re.match(
                r"      (?:SUBROUTINE|INTEGER FUNCTION) P(\d+)", line
            )
            if header:
                unit = int(header.group(1))
                continue
            for target in re.findall(r"(?:CALL P|= P)(\d+)", line):
                callee = int(target)
                if unit is None:
                    caller_layer = -1  # MAIN fans into layer 0
                else:
                    assert callee > unit, (
                        f"P{unit} calls P{callee}: not acyclic"
                    )
                    caller_layer = unit // config.layer_width
                assert callee // config.layer_width == caller_layer + 1, (
                    f"call from layer {caller_layer} skipped to P{callee}"
                )

    def test_every_unit_is_emitted(self):
        config = ScaleConfig(procedures=257, layer_width=16)
        text = generate_scaled_program(0, config)
        assert text.count("      PROGRAM MAIN") == 1
        headers = re.findall(
            r"      (?:SUBROUTINE|INTEGER FUNCTION) P(\d+)[(\n]", text
        )
        assert sorted(int(h) for h in headers) == list(range(257))

    def test_generation_is_effectively_linear(self):
        # Not a wall-clock gate (too flaky); the text itself must grow
        # linearly — the classic generator's O(N^2) shape shows up as
        # super-linear *time*, but a layered emitter has no mechanism
        # to grow text super-linearly either.
        small = generate_scaled_program(1, ScaleConfig(procedures=500))
        large = generate_scaled_program(1, ScaleConfig(procedures=4000))
        ratio = len(large.splitlines()) / len(small.splitlines())
        assert 6.0 <= ratio <= 10.0, f"line-count ratio {ratio:.1f}"

    def test_20k_procedures_generate_quickly(self):
        start = time.perf_counter()
        text = generate_scaled_program(0, ScaleConfig(procedures=20_000))
        elapsed = time.perf_counter() - start
        assert text.count("SUBROUTINE P") + text.count(
            "INTEGER FUNCTION P"
        ) == 20_000
        # ~0.4s on the growth container; 30s is a generous ceiling that
        # still catches an accidental O(N^2) regression (hours there).
        assert elapsed < 30.0, f"20k-procedure generation took {elapsed:.1f}s"


class TestAnalyzability:
    @pytest.mark.parametrize("seed", [0, 7])
    def test_analyzes_cleanly_and_finds_constants(self, seed):
        text = generate_scaled_program(seed, ScaleConfig(procedures=250))
        result = analyze_source(text, AnalysisConfig(), "scaled.f")
        report = result.constants.format_report()
        assert len(report.splitlines()) > 20, (
            "scale-tier programs should expose interprocedural constants"
        )
        assert not result.resilience.demotions

    def test_no_globals_still_valid(self):
        text = generate_scaled_program(
            2, ScaleConfig(procedures=64, globals_count=0)
        )
        assert "COMMON" not in text
        result = analyze_source(text, AnalysisConfig(), "noglobals.f")
        assert result.constants is not None
