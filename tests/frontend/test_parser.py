"""Parser unit tests."""

import pytest

from repro.frontend import ast
from repro.frontend.errors import ParseError
from repro.frontend.parser import parse_source


def parse_unit(body, header="      PROGRAM MAIN", decls=""):
    text = f"{header}\n{decls}{body}\n      END\n"
    return parse_source(text).units[0]


def parse_stmts(body, decls=""):
    return parse_unit(body, decls=decls).body


class TestUnits:
    def test_program_unit(self):
        unit = parse_unit("      X = 1")
        assert unit.kind is ast.ProcedureKind.PROGRAM
        assert unit.name == "main"
        assert unit.params == []

    def test_subroutine_with_params(self):
        module = parse_source(
            "      SUBROUTINE S(A, B)\n      A = B\n      END\n"
        )
        unit = module.units[0]
        assert unit.kind is ast.ProcedureKind.SUBROUTINE
        assert unit.params == ["a", "b"]

    def test_subroutine_without_params(self):
        unit = parse_source("      SUBROUTINE S\n      X = 1\n      END\n").units[0]
        assert unit.params == []

    def test_integer_function(self):
        unit = parse_source(
            "      INTEGER FUNCTION F(Q)\n      F = Q\n      END\n"
        ).units[0]
        assert unit.kind is ast.ProcedureKind.FUNCTION
        assert unit.name == "f"

    def test_multiple_units(self):
        module = parse_source(
            "      PROGRAM MAIN\n      CALL S\n      END\n"
            "      SUBROUTINE S\n      X = 1\n      END\n"
        )
        assert [u.name for u in module.units] == ["main", "s"]

    def test_module_unit_lookup(self):
        module = parse_source("      PROGRAM MAIN\n      X = 1\n      END\n")
        assert module.unit("MAIN").name == "main"
        with pytest.raises(KeyError):
            module.unit("nope")

    def test_empty_source_rejected(self):
        with pytest.raises(ParseError):
            parse_source("")

    def test_bad_header_rejected(self):
        with pytest.raises(ParseError):
            parse_source("      BANANA MAIN\n      END\n")


class TestDeclarations:
    def test_integer_decl(self):
        unit = parse_unit("      X = 1", decls="      INTEGER A, B\n")
        (decl,) = unit.decls
        assert isinstance(decl, ast.IntegerDecl)
        assert [i.name for i in decl.items] == ["a", "b"]

    def test_array_decl(self):
        unit = parse_unit("      X = 1", decls="      INTEGER A(10), B(3, 4)\n")
        items = unit.decls[0].items
        assert items[0].dims == [10]
        assert items[1].dims == [3, 4]

    def test_dimension_decl(self):
        unit = parse_unit("      X = 1", decls="      DIMENSION A(5)\n")
        assert isinstance(unit.decls[0], ast.DimensionDecl)

    def test_common_decl(self):
        unit = parse_unit("      X = 1", decls="      COMMON /BLK/ G1, G2\n")
        decl = unit.decls[0]
        assert isinstance(decl, ast.CommonDecl)
        assert decl.block == "blk"
        assert [i.name for i in decl.items] == ["g1", "g2"]

    def test_parameter_decl(self):
        unit = parse_unit("      X = K", decls="      PARAMETER (K = 10, L = K + 1)\n")
        decl = unit.decls[0]
        assert isinstance(decl, ast.ParameterDecl)
        assert decl.bindings[0][0] == "k"

    def test_declarations_must_precede_statements(self):
        # An INTEGER decl after an executable statement is a parse error
        # (INTEGER starts a declaration, which is no longer allowed).
        with pytest.raises(ParseError):
            parse_source(
                "      PROGRAM MAIN\n      X = 1\n      INTEGER Y\n      END\n"
            )


class TestStatements:
    def test_assignment(self):
        (stmt,) = parse_stmts("      X = 1 + 2")
        assert isinstance(stmt, ast.Assign)
        assert isinstance(stmt.target, ast.VarRef)

    def test_array_assignment(self):
        (stmt,) = parse_stmts("      A(3) = 1", decls="      INTEGER A(10)\n")
        assert isinstance(stmt.target, ast.ArrayRef)

    def test_call_no_args(self):
        module = parse_source(
            "      PROGRAM MAIN\n      CALL S\n      END\n"
            "      SUBROUTINE S\n      X = 1\n      END\n"
        )
        stmt = module.units[0].body[0]
        assert isinstance(stmt, ast.CallStmt)
        assert stmt.args == []

    def test_call_with_args(self):
        (stmt,) = parse_stmts("      CALL S(1, X, Y + 1)")
        assert len(stmt.args) == 3

    def test_goto_and_labeled_continue(self):
        stmts = parse_stmts("      GOTO 10\n 10   CONTINUE")
        assert isinstance(stmts[0], ast.GotoStmt)
        assert stmts[0].target == 10
        assert isinstance(stmts[1], ast.ContinueStmt)
        assert stmts[1].label == 10

    def test_return(self):
        (stmt,) = parse_stmts("      RETURN")
        assert isinstance(stmt, ast.ReturnStmt)

    def test_stop(self):
        (stmt,) = parse_stmts("      STOP")
        assert isinstance(stmt, ast.StopStmt)

    def test_read(self):
        (stmt,) = parse_stmts("      READ *, X, Y")
        assert isinstance(stmt, ast.ReadStmt)
        assert len(stmt.targets) == 2

    def test_print_with_string(self):
        (stmt,) = parse_stmts("      PRINT *, 'v', X")
        assert stmt.items[0] == "v"
        assert isinstance(stmt.items[1], ast.VarRef)

    def test_write_is_print_synonym(self):
        (stmt,) = parse_stmts("      WRITE *, X")
        assert isinstance(stmt, ast.PrintStmt)


class TestIf:
    def test_logical_if(self):
        (stmt,) = parse_stmts("      IF (X .GT. 0) Y = 1")
        assert isinstance(stmt, ast.IfStmt)
        assert len(stmt.then_body) == 1
        assert stmt.else_body == []

    def test_block_if(self):
        (stmt,) = parse_stmts(
            "      IF (X .GT. 0) THEN\n      Y = 1\n      ENDIF"
        )
        assert isinstance(stmt, ast.IfStmt)
        assert len(stmt.then_body) == 1

    def test_if_else(self):
        (stmt,) = parse_stmts(
            "      IF (X .GT. 0) THEN\n      Y = 1\n      ELSE\n      Y = 2\n"
            "      ENDIF"
        )
        assert len(stmt.else_body) == 1

    def test_elseif_joined(self):
        (stmt,) = parse_stmts(
            "      IF (X .EQ. 1) THEN\n      Y = 1\n"
            "      ELSEIF (X .EQ. 2) THEN\n      Y = 2\n      ENDIF"
        )
        assert len(stmt.elifs) == 1

    def test_else_if_split(self):
        (stmt,) = parse_stmts(
            "      IF (X .EQ. 1) THEN\n      Y = 1\n"
            "      ELSE IF (X .EQ. 2) THEN\n      Y = 2\n"
            "      ELSE\n      Y = 3\n      END IF"
        )
        assert len(stmt.elifs) == 1
        assert len(stmt.else_body) == 1

    def test_end_if_two_tokens(self):
        (stmt,) = parse_stmts("      IF (X .GT. 0) THEN\n      Y = 1\n      END IF")
        assert isinstance(stmt, ast.IfStmt)

    def test_missing_endif_rejected(self):
        with pytest.raises(ParseError):
            parse_stmts("      IF (X .GT. 0) THEN\n      Y = 1")


class TestDo:
    def test_do_enddo(self):
        (stmt,) = parse_stmts("      DO I = 1, 10\n      X = I\n      ENDDO")
        assert isinstance(stmt, ast.DoStmt)
        assert stmt.var == "i"
        assert stmt.step is None

    def test_do_with_step(self):
        (stmt,) = parse_stmts("      DO I = 1, 10, 2\n      X = I\n      ENDDO")
        assert isinstance(stmt.step, ast.IntLiteral)

    def test_do_end_do_two_tokens(self):
        (stmt,) = parse_stmts("      DO I = 1, 3\n      X = I\n      END DO")
        assert isinstance(stmt, ast.DoStmt)

    def test_labeled_do(self):
        (stmt,) = parse_stmts(
            "      DO 20 I = 1, 3\n      X = I\n 20   CONTINUE"
        )
        assert isinstance(stmt, ast.DoStmt)
        assert len(stmt.body) == 2  # the X= and the labeled CONTINUE

    def test_labeled_do_missing_terminal(self):
        with pytest.raises(ParseError):
            parse_stmts("      DO 20 I = 1, 3\n      X = I")

    def test_do_while(self):
        (stmt,) = parse_stmts(
            "      DO WHILE (X .GT. 0)\n      X = X - 1\n      ENDDO"
        )
        assert isinstance(stmt, ast.DoWhileStmt)

    def test_nested_do(self):
        (stmt,) = parse_stmts(
            "      DO I = 1, 3\n      DO J = 1, 3\n      X = I + J\n"
            "      ENDDO\n      ENDDO"
        )
        assert isinstance(stmt.body[0], ast.DoStmt)


class TestExpressions:
    def expr_of(self, text):
        (stmt,) = parse_stmts(f"      X = {text}")
        return stmt.value

    def test_precedence_mul_over_add(self):
        expr = self.expr_of("1 + 2 * 3")
        assert isinstance(expr, ast.BinaryOp) and expr.op == "+"
        assert isinstance(expr.right, ast.BinaryOp) and expr.right.op == "*"

    def test_parentheses(self):
        expr = self.expr_of("(1 + 2) * 3")
        assert expr.op == "*"
        assert isinstance(expr.left, ast.BinaryOp)

    def test_left_associativity(self):
        expr = self.expr_of("10 - 4 - 3")
        assert expr.op == "-"
        assert isinstance(expr.left, ast.BinaryOp)
        assert expr.right.value == 3

    def test_unary_minus(self):
        expr = self.expr_of("-X")
        assert isinstance(expr, ast.UnaryOp) and expr.op == "-"

    def test_relational(self):
        expr = self.expr_of("A .LE. B")
        assert isinstance(expr, ast.Compare) and expr.op == "le"

    def test_logical_precedence(self):
        expr = self.expr_of("A .GT. 0 .AND. B .GT. 0 .OR. C .GT. 0")
        assert isinstance(expr, ast.LogicalOp) and expr.op == "or"
        assert expr.left.op == "and"

    def test_not(self):
        expr = self.expr_of(".NOT. (A .EQ. B)")
        assert isinstance(expr, ast.UnaryOp) and expr.op == "not"

    def test_array_ref_vs_function_call(self):
        unit = parse_unit(
            "      X = A(1) + F(1)", decls="      INTEGER A(10)\n"
        )
        expr = unit.body[0].value
        assert isinstance(expr.left, ast.ArrayRef)
        assert isinstance(expr.right, ast.FunctionCall)

    def test_function_call_no_args(self):
        expr = self.expr_of("F()")
        assert isinstance(expr, ast.FunctionCall)
        assert expr.args == []

    def test_walk_expressions(self):
        expr = self.expr_of("1 + F(A, B(2))")
        names = [
            e.name for e in ast.walk_expressions(expr) if isinstance(e, ast.VarRef)
        ]
        assert "a" in names


class TestWalkStatements:
    def test_recurses_into_compounds(self):
        stmts = parse_stmts(
            "      IF (X .GT. 0) THEN\n"
            "      DO I = 1, 3\n      Y = I\n      ENDDO\n"
            "      ENDIF"
        )
        all_stmts = list(ast.walk_statements(stmts))
        assert any(isinstance(s, ast.DoStmt) for s in all_stmts)
        assert any(isinstance(s, ast.Assign) for s in all_stmts)
