"""Diagnostics: error classes, locations, and message quality across the
frontend and lowering. A production frontend lives or dies by its error
reporting; these tests pin the contract."""

import pytest

from repro.frontend.errors import (
    FrontendError,
    LexError,
    ParseError,
    SemanticError,
)
from repro.frontend.lexer import tokenize
from repro.frontend.parser import parse_source
from repro.frontend.source import SourceFile, SourceLocation, UNKNOWN_LOCATION

from tests.conftest import lower


class TestErrorHierarchy:
    def test_all_diagnostics_are_frontend_errors(self):
        for cls in (LexError, ParseError, SemanticError):
            assert issubclass(cls, FrontendError)

    def test_message_includes_location(self):
        error = ParseError("boom", SourceLocation("f.f", 3, 7))
        assert str(error) == "f.f:3:7: boom"
        assert error.message == "boom"

    def test_message_without_location(self):
        error = ParseError("boom")
        assert str(error) == "boom"
        assert error.location is None


class TestLexDiagnostics:
    def test_bad_character_location(self):
        with pytest.raises(LexError) as info:
            tokenize("  x = $", filename="bad.f")
        assert info.value.location.filename == "bad.f"
        assert info.value.location.column == 7

    def test_unterminated_string_location(self):
        with pytest.raises(LexError) as info:
            tokenize("print *, 'open")
        assert "unterminated" in info.value.message


class TestParseDiagnostics:
    def unit(self, body):
        return f"      PROGRAM MAIN\n{body}\n      END\n"

    @pytest.mark.parametrize(
        "body,fragment",
        [
            ("      X = ", "unexpected"),
            ("      IF (X) ELSE", "expected THEN or a simple statement"),
            ("      CALL", "subroutine name"),
            ("      DO I = 1\n      ENDDO", ","),
            ("      X = (1 + 2", ")"),
            ("      GOTO X", "statement label"),
        ],
    )
    def test_messages_name_the_problem(self, body, fragment):
        with pytest.raises(ParseError) as info:
            parse_source(self.unit(body))
        assert fragment.lower() in str(info.value).lower()

    def test_error_location_points_at_offender(self):
        # The lexer rejects '@' before the parser ever sees it; both are
        # FrontendErrors with accurate locations.
        with pytest.raises(FrontendError) as info:
            parse_source("      PROGRAM MAIN\n      X = @\n      END\n")
        assert info.value.location.line == 2


class TestSemanticDiagnostics:
    @pytest.mark.parametrize(
        "source,fragment",
        [
            (
                "      PROGRAM MAIN\n      CALL GHOST\n      END\n",
                "undefined procedure",
            ),
            (
                "      PROGRAM MAIN\n      X = GHOST(1)\n      END\n",
                "undefined function",
            ),
            (
                "      PROGRAM MAIN\n      PARAMETER (K = 2)\n      K = 3\n"
                "      END\n",
                "PARAMETER",
            ),
            (
                "      PROGRAM MAIN\n      DO I = 1, 5, J\n      X = I\n"
                "      ENDDO\n      END\n",
                "step",
            ),
            (
                "      PROGRAM MAIN\n      GOTO 77\n      END\n",
                "label",
            ),
        ],
    )
    def test_messages_name_the_problem(self, source, fragment):
        with pytest.raises(SemanticError) as info:
            lower(source)
        assert fragment.lower() in str(info.value).lower()

    def test_arity_error_counts_arguments(self):
        source = (
            "      PROGRAM MAIN\n      CALL S(1, 2, 3)\n      END\n"
            "      SUBROUTINE S(A)\n      X = A\n      END\n"
        )
        with pytest.raises(SemanticError) as info:
            lower(source)
        assert "3 arguments" in str(info.value)
        assert "expected 1" in str(info.value)


class TestSourceFile:
    def test_line_access(self):
        source = SourceFile("t.f", "one\ntwo\nthree")
        assert source.line(2) == "two"
        assert source.line(99) == ""
        assert source.line(0) == ""

    def test_count_code_lines_excludes_comments_and_blanks(self):
        text = (
            "      X = 1\n"
            "C comment card\n"
            "* star comment\n"
            "\n"
            "   ! bang comment\n"
            "      Y = 2\n"
        )
        assert SourceFile("t.f", text).count_code_lines() == 2

    def test_call_line_is_code(self):
        # 'CALL ...' starts with C but is not a comment card.
        assert SourceFile("t.f", "CALL F\n").count_code_lines() == 1

    def test_unknown_location_constant(self):
        assert UNKNOWN_LOCATION.line == 0
        assert "unknown" in UNKNOWN_LOCATION.filename
