"""Lexer unit tests."""

import pytest

from repro.frontend.errors import LexError
from repro.frontend.lexer import tokenize
from repro.frontend.tokens import TokenKind


def kinds(text):
    return [t.kind for t in tokenize(text)]


def non_structural(text):
    return [
        t
        for t in tokenize(text)
        if t.kind not in (TokenKind.NEWLINE, TokenKind.EOF)
    ]


class TestBasicTokens:
    def test_integer_literal(self):
        (tok,) = non_structural("X = 42")[2:]
        assert tok.kind is TokenKind.INT_LITERAL
        assert tok.value == 42

    def test_identifier_is_lowercased_in_value(self):
        tok = non_structural("FooBar = 1")[0]
        assert tok.kind is TokenKind.IDENT
        assert tok.value == "foobar"
        assert tok.text == "FooBar"

    def test_keywords_case_insensitive(self):
        for spelling in ("call", "CALL", "Call"):
            assert non_structural(f"{spelling} f")[0].kind is TokenKind.CALL

    def test_operators(self):
        tokens = non_structural("a = b + c - d * e / f")
        ops = [t.kind for t in tokens if t.kind is not TokenKind.IDENT]
        assert ops == [
            TokenKind.EQUALS,
            TokenKind.PLUS,
            TokenKind.MINUS,
            TokenKind.STAR,
            TokenKind.SLASH,
        ]

    def test_parens_and_commas(self):
        tokens = non_structural("call f(a, b)")
        assert [t.kind for t in tokens] == [
            TokenKind.CALL,
            TokenKind.IDENT,
            TokenKind.LPAREN,
            TokenKind.IDENT,
            TokenKind.COMMA,
            TokenKind.IDENT,
            TokenKind.RPAREN,
        ]

    def test_string_literal(self):
        tokens = non_structural("print *, 'hello world'")
        assert tokens[-1].kind is TokenKind.STRING
        assert tokens[-1].value == "hello world"

    def test_unterminated_string_raises(self):
        with pytest.raises(LexError):
            tokenize("print *, 'oops")

    def test_unexpected_character_raises(self):
        with pytest.raises(LexError):
            tokenize("x = @")


class TestDottedOperators:
    @pytest.mark.parametrize(
        "spelling,kind",
        [
            (".EQ.", TokenKind.EQ),
            (".ne.", TokenKind.NE),
            (".Lt.", TokenKind.LT),
            (".LE.", TokenKind.LE),
            (".GT.", TokenKind.GT),
            (".ge.", TokenKind.GE),
            (".AND.", TokenKind.AND),
            (".or.", TokenKind.OR),
            (".NOT.", TokenKind.NOT),
        ],
    )
    def test_each_operator(self, spelling, kind):
        tokens = non_structural(f"x = a {spelling} b")
        assert kind in [t.kind for t in tokens]


class TestLabels:
    def test_label_at_line_start(self):
        tokens = non_structural(" 10   CONTINUE")
        assert tokens[0].kind is TokenKind.LABEL
        assert tokens[0].value == 10

    def test_integer_mid_line_is_literal_not_label(self):
        tokens = non_structural("GOTO 10")
        assert tokens[1].kind is TokenKind.INT_LITERAL

    def test_do_loop_label_is_literal(self):
        tokens = non_structural("DO 10 I = 1, 5")
        assert tokens[0].kind is TokenKind.DO
        assert tokens[1].kind is TokenKind.INT_LITERAL


class TestCommentsAndStructure:
    def test_comment_card_c(self):
        assert non_structural("C this is a comment") == []

    def test_comment_card_star(self):
        assert non_structural("* this too") == []

    def test_bang_comment_line(self):
        assert non_structural("  ! whole line") == []

    def test_inline_bang_comment(self):
        tokens = non_structural("x = 1  ! trailing")
        assert len(tokens) == 3

    def test_call_is_not_comment(self):
        # 'CALL' starts with C but is not a comment card (no space after C).
        tokens = non_structural("CALL F")
        assert tokens[0].kind is TokenKind.CALL

    def test_newline_per_statement(self):
        tokens = tokenize("x = 1\ny = 2")
        newlines = [t for t in tokens if t.kind is TokenKind.NEWLINE]
        assert len(newlines) == 2

    def test_blank_lines_produce_nothing(self):
        tokens = tokenize("x = 1\n\n\ny = 2")
        newlines = [t for t in tokens if t.kind is TokenKind.NEWLINE]
        assert len(newlines) == 2

    def test_eof_is_last(self):
        assert tokenize("x = 1")[-1].kind is TokenKind.EOF

    def test_empty_source_has_only_eof(self):
        assert kinds("") == [TokenKind.EOF]


class TestLocations:
    def test_line_and_column(self):
        tokens = non_structural("  x = 1")
        assert tokens[0].location.line == 1
        assert tokens[0].location.column == 3

    def test_multiline_locations(self):
        tokens = [t for t in tokenize("a = 1\n  b = 2") if t.kind is TokenKind.IDENT]
        assert tokens[0].location.line == 1
        assert tokens[1].location.line == 2
        assert tokens[1].location.column == 3

    def test_filename_propagates(self):
        tok = tokenize("x = 1", filename="prog.f")[0]
        assert tok.location.filename == "prog.f"
