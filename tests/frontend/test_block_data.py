"""BLOCK DATA / DATA statement tests: parsing, lowering, propagation,
and interpretation of static global initial values."""

import pytest

from repro.config import AnalysisConfig
from repro.frontend import ast
from repro.frontend.errors import ParseError, SemanticError
from repro.frontend.parser import parse_source
from repro.ipcp.driver import analyze_source
from repro.ir.interp import run_source

from tests.conftest import lower

BLOCK_DATA_PROGRAM = (
    "      PROGRAM MAIN\n"
    "      COMMON /CFG/ NX, NY\n"
    "      CALL WORK\n"
    "      END\n"
    "      BLOCK DATA SETUP\n"
    "      COMMON /CFG/ NX, NY\n"
    "      DATA NX /64/, NY /32/\n"
    "      END\n"
    "      SUBROUTINE WORK\n"
    "      COMMON /CFG/ NX, NY\n"
    "      A = NX + NY\n"
    "      PRINT *, A\n"
    "      END\n"
)


class TestParsing:
    def test_block_data_unit_kind(self):
        module = parse_source(BLOCK_DATA_PROGRAM)
        setup = module.unit("setup")
        assert setup.kind is ast.ProcedureKind.BLOCK_DATA

    def test_unnamed_block_data(self):
        module = parse_source(
            "      BLOCK DATA\n      COMMON /C/ G\n      DATA G /1/\n"
            "      END\n"
            "      PROGRAM MAIN\n      COMMON /C/ G\n      PRINT *, G\n"
            "      END\n"
        )
        assert module.units[0].kind is ast.ProcedureKind.BLOCK_DATA
        assert module.units[0].name == "blockdata"

    def test_blockdata_single_token(self):
        module = parse_source(
            "      BLOCKDATA INIT\n      COMMON /C/ G\n      DATA G /1/\n"
            "      END\n"
            "      PROGRAM MAIN\n      COMMON /C/ G\n      X = G\n      END\n"
        )
        assert module.units[0].kind is ast.ProcedureKind.BLOCK_DATA

    def test_data_group_form(self):
        module = parse_source(
            "      BLOCK DATA B\n      COMMON /C/ G, H\n"
            "      DATA G, H /7, -8/\n      END\n"
            "      PROGRAM MAIN\n      COMMON /C/ G, H\n      X = G\n"
            "      END\n"
        )
        data = [d for d in module.units[0].decls if isinstance(d, ast.DataDecl)]
        assert data[0].bindings == [("g", 7), ("h", -8)]

    def test_mismatched_group_counts_rejected(self):
        with pytest.raises(ParseError):
            parse_source(
                "      BLOCK DATA B\n      COMMON /C/ G, H\n"
                "      DATA G, H /7/\n      END\n"
            )


class TestLowering:
    def test_initial_values_recorded(self):
        program = lower(BLOCK_DATA_PROGRAM)
        values = {
            var.name: value
            for var, value in program.global_initial_values.items()
        }
        assert values == {"nx": 64, "ny": 32}

    def test_block_data_produces_no_procedure(self):
        program = lower(BLOCK_DATA_PROGRAM)
        assert set(program.procedures) == {"main", "work"}

    def test_data_in_procedure_rejected(self):
        with pytest.raises(SemanticError):
            lower(
                "      PROGRAM MAIN\n      COMMON /C/ G\n      DATA G /1/\n"
                "      G = G + 1\n      END\n"
            )

    def test_data_for_non_common_rejected(self):
        with pytest.raises(SemanticError):
            lower(
                "      BLOCK DATA B\n      INTEGER X\n      DATA X /1/\n"
                "      END\n"
                "      PROGRAM MAIN\n      Y = 1\n      END\n"
            )

    def test_duplicate_data_rejected(self):
        with pytest.raises(SemanticError):
            lower(
                "      BLOCK DATA B\n      COMMON /C/ G\n"
                "      DATA G /1/, G /2/\n      END\n"
                "      PROGRAM MAIN\n      COMMON /C/ G\n      X = G\n"
                "      END\n"
            )

    def test_statements_in_block_data_rejected(self):
        with pytest.raises(SemanticError):
            lower(
                "      BLOCK DATA B\n      COMMON /C/ G\n      G = 1\n"
                "      END\n"
                "      PROGRAM MAIN\n      COMMON /C/ G\n      X = G\n"
                "      END\n"
            )


class TestPropagation:
    def test_data_values_become_interprocedural_constants(self):
        result = analyze_source(BLOCK_DATA_PROGRAM)
        work = {
            var.name: value
            for var, value in result.constants.constants_of("work").items()
        }
        assert work == {"nx": 64, "ny": 32}

    def test_reassignment_kills_data_value(self):
        result = analyze_source(
            "      PROGRAM MAIN\n      COMMON /C/ G\n      READ *, G\n"
            "      CALL W\n      END\n"
            "      BLOCK DATA B\n      COMMON /C/ G\n      DATA G /5/\n"
            "      END\n"
            "      SUBROUTINE W\n      COMMON /C/ G\n      X = G\n      END\n"
        )
        assert result.constants.constants_of("w") == {}

    def test_uninitialized_globals_still_bottom(self):
        result = analyze_source(
            "      PROGRAM MAIN\n      COMMON /C/ G, H\n      CALL W\n"
            "      END\n"
            "      BLOCK DATA B\n      COMMON /C/ G, H\n      DATA G /5/\n"
            "      END\n"
            "      SUBROUTINE W\n      COMMON /C/ G, H\n      X = G + H\n"
            "      END\n"
        )
        names = {
            var.name for var in result.constants.constants_of("w")
        }
        assert names == {"g"}


class TestInterpretation:
    def test_interpreter_honours_data(self):
        trace = run_source(BLOCK_DATA_PROGRAM)
        assert trace.output == ["96"]

    def test_analysis_sound_with_data(self):
        trace = run_source(BLOCK_DATA_PROGRAM)
        result = analyze_source(BLOCK_DATA_PROGRAM)
        for proc in ("main", "work"):
            claimed = result.constants.constants_of(proc)
            assert trace.constant_violations(proc, claimed) == []
