"""Command-line interface tests."""

import pytest

from repro.cli import main

PROGRAM = (
    "      PROGRAM MAIN\n"
    "      N = 6\n"
    "      CALL S(N)\n"
    "      END\n"
    "      SUBROUTINE S(K)\n"
    "      A = K + 1\n"
    "      RETURN\n"
    "      END\n"
)


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "prog.f"
    path.write_text(PROGRAM)
    return str(path)


class TestAnalyze:
    def test_default_run(self, program_file, capsys):
        assert main(["analyze", program_file]) == 0
        out = capsys.readouterr().out
        assert "CONSTANTS(s)" in out
        assert "k=6" in out
        assert "substituted constant references: 2" in out

    def test_jump_kind_flag(self, program_file, capsys):
        assert main(["analyze", program_file, "--jump", "literal"]) == 0
        out = capsys.readouterr().out
        assert "literal" in out
        assert "no interprocedural constants" in out

    def test_no_mod_flag(self, program_file, capsys):
        assert main(["analyze", program_file, "--no-mod"]) == 0
        assert "nomod" in capsys.readouterr().out

    def test_intra_only_flag(self, program_file, capsys):
        assert main(["analyze", program_file, "--intra-only"]) == 0
        out = capsys.readouterr().out
        assert "intraprocedural" in out

    def test_complete_flag(self, program_file, capsys):
        assert main(["analyze", program_file, "--complete"]) == 0
        assert "complete" in capsys.readouterr().out

    def test_transform_flag(self, program_file, capsys):
        assert main(["analyze", program_file, "--transform"]) == 0
        out = capsys.readouterr().out
        assert "A = 6 + 1" in out

    def test_dump_ir_flag(self, program_file, capsys):
        assert main(["analyze", program_file, "--dump-ir"]) == 0
        out = capsys.readouterr().out
        assert "SSA IR" in out
        assert "subroutine s" in out


class TestCompare:
    def test_compare_lists_all_kinds(self, program_file, capsys):
        assert main(["compare", program_file]) == 0
        out = capsys.readouterr().out
        for kind in ("literal", "intraprocedural", "pass_through", "polynomial"):
            assert kind in out


class TestParser:
    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_jump_kind_rejected(self, program_file):
        with pytest.raises(SystemExit):
            main(["analyze", program_file, "--jump", "quantum"])


PROGRAM_WITH_IO = (
    "      PROGRAM MAIN\n"
    "      READ *, X\n"
    "      PRINT *, X * 2\n"
    "      END\n"
)

CONFLICT_PROGRAM = (
    "      PROGRAM MAIN\n"
    "      CALL C(4)\n      CALL C(8)\n      END\n"
    "      SUBROUTINE C(S)\n      A = S + 1\n      END\n"
)


class TestRun:
    def test_executes_and_prints(self, tmp_path, capsys):
        path = tmp_path / "io.f"
        path.write_text(PROGRAM_WITH_IO)
        assert main(["run", str(path), "--input", "21"]) == 0
        out = capsys.readouterr().out
        assert "42" in out
        assert "instructions executed" in out

    def test_fuel_flag(self, tmp_path):
        path = tmp_path / "loop.f"
        path.write_text(
            "      PROGRAM MAIN\n      X = 1\n"
            "      DO WHILE (X .GT. 0)\n      X = X + 1\n      ENDDO\n"
            "      END\n"
        )
        import pytest as _pytest
        from repro.ir.interp import InterpreterError

        with _pytest.raises(InterpreterError):
            main(["run", str(path), "--fuel", "500"])


class TestCloneCommand:
    def test_reports_clones(self, tmp_path, capsys):
        path = tmp_path / "c.f"
        path.write_text(CONFLICT_PROGRAM)
        assert main(["clone", str(path)]) == 0
        out = capsys.readouterr().out
        assert "cloned c ->" in out
        assert "after cloning" in out


class TestIntegrateCommand:
    def test_reports_growth(self, tmp_path, capsys):
        path = tmp_path / "c.f"
        path.write_text(CONFLICT_PROGRAM)
        assert main(["integrate", str(path)]) == 0
        out = capsys.readouterr().out
        assert "procedure integration" in out
        assert "code growth" in out


class TestSuiteCommand:
    def test_writes_programs(self, tmp_path, capsys):
        out = tmp_path / "suite"
        assert main(["suite", "--out", str(out)]) == 0
        written = sorted(p.name for p in out.glob("*.f"))
        assert "ocean.f" in written
        assert len(written) == 12
        # Each written program must itself parse and analyze.
        from repro.ipcp.driver import analyze_file

        result = analyze_file(str(out / "trfd.f"))
        assert result.substituted_constants > 0


class TestStatsFlag:
    def test_stats_printed(self, program_file, capsys):
        assert main(["analyze", program_file, "--stats"]) == 0
        out = capsys.readouterr().out
        assert "statistics" in out
        assert "forward jump functions" in out


class TestDotAndGsaFlags:
    def test_dot_writes_files(self, program_file, tmp_path, capsys):
        out = tmp_path / "dots"
        assert main(["analyze", program_file, "--dot", str(out)]) == 0
        assert (out / "callgraph.dot").exists()
        assert "Graphviz files written" in capsys.readouterr().out

    def test_gsa_flag(self, program_file, capsys):
        assert main(["analyze", program_file, "--gsa"]) == 0
        assert "gsa" in capsys.readouterr().out
