"""Command-line interface tests."""

import pytest

from repro.cli import main

PROGRAM = (
    "      PROGRAM MAIN\n"
    "      N = 6\n"
    "      CALL S(N)\n"
    "      END\n"
    "      SUBROUTINE S(K)\n"
    "      A = K + 1\n"
    "      RETURN\n"
    "      END\n"
)


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "prog.f"
    path.write_text(PROGRAM)
    return str(path)


class TestAnalyze:
    def test_default_run(self, program_file, capsys):
        assert main(["analyze", program_file]) == 0
        out = capsys.readouterr().out
        assert "CONSTANTS(s)" in out
        assert "k=6" in out
        assert "substituted constant references: 2" in out

    def test_jump_kind_flag(self, program_file, capsys):
        assert main(["analyze", program_file, "--jump", "literal"]) == 0
        out = capsys.readouterr().out
        assert "literal" in out
        assert "no interprocedural constants" in out

    def test_no_mod_flag(self, program_file, capsys):
        assert main(["analyze", program_file, "--no-mod"]) == 0
        assert "nomod" in capsys.readouterr().out

    def test_intra_only_flag(self, program_file, capsys):
        assert main(["analyze", program_file, "--intra-only"]) == 0
        out = capsys.readouterr().out
        assert "intraprocedural" in out

    def test_complete_flag(self, program_file, capsys):
        assert main(["analyze", program_file, "--complete"]) == 0
        assert "complete" in capsys.readouterr().out

    def test_transform_flag(self, program_file, capsys):
        assert main(["analyze", program_file, "--transform"]) == 0
        out = capsys.readouterr().out
        assert "A = 6 + 1" in out

    def test_dump_ir_flag(self, program_file, capsys):
        assert main(["analyze", program_file, "--dump-ir"]) == 0
        out = capsys.readouterr().out
        assert "SSA IR" in out
        assert "subroutine s" in out


class TestEngineFlags:
    def test_solver_flag(self, program_file, capsys):
        assert main(
            ["analyze", program_file, "--solver", "priority", "--stats"]
        ) == 0
        assert "priority" in capsys.readouterr().out

    def test_unknown_solver_rejected(self, program_file):
        with pytest.raises(SystemExit):
            main(["analyze", program_file, "--solver", "chaos"])

    def test_jobs_output_matches_serial(self, program_file, capsys):
        assert main(["analyze", program_file, "--transform"]) == 0
        serial = capsys.readouterr().out
        assert main(
            ["analyze", program_file, "--transform", "--jobs", "4"]
        ) == 0
        assert capsys.readouterr().out == serial

    def test_cache_dir_output_matches_serial(
        self, program_file, tmp_path, capsys
    ):
        assert main(["analyze", program_file, "--transform"]) == 0
        serial = capsys.readouterr().out
        cache = str(tmp_path / "cache")
        for _ in range(2):  # cold, then warm (run-cache replay path)
            assert main(
                ["analyze", program_file, "--transform", "--cache-dir", cache]
            ) == 0
            assert capsys.readouterr().out == serial

    def test_replay_serves_stats_and_ir(self, program_file, tmp_path, capsys):
        """A warm run-cache replay renders --stats and --dump-ir from
        the recorded payload, byte-identical to the cold run."""
        cache = str(tmp_path / "cache")
        flags = ["--stats", "--dump-ir", "--transform", "--cache-dir", cache]
        assert main(["analyze", program_file] + flags) == 0
        cold = capsys.readouterr().out
        assert main(["analyze", program_file] + flags) == 0
        warm = capsys.readouterr().out
        assert warm == cold
        assert "--- statistics ---" in warm
        assert "--- SSA IR ---" in warm

    def test_replay_skipped_when_stats_not_recorded(
        self, program_file, tmp_path, capsys
    ):
        """A payload recorded by a plain run (v2 always records the
        renderings, so simulate a degraded one) falls through to a live
        analysis instead of dropping the section."""
        from repro.cli import _payload_serves

        class Args:
            dump_ir = True
            stats = False

        assert not _payload_serves({"ir": None}, Args)
        assert _payload_serves({"ir": "text", "stats": None}, Args)

    def test_explain_invalidation_cold_warm_edited(
        self, program_file, tmp_path, capsys
    ):
        cache = str(tmp_path / "cache")
        flags = ["--cache-dir", cache, "--explain-invalidation"]
        assert main(["analyze", program_file] + flags) == 0
        assert "cold run" in capsys.readouterr().out
        assert main(["analyze", program_file] + flags) == 0
        assert "replayed from the run cache" in capsys.readouterr().out
        with open(program_file, "w") as handle:
            handle.write(PROGRAM.replace("K + 1", "K + 2"))
        assert main(["analyze", program_file] + flags) == 0
        out = capsys.readouterr().out
        assert "edited      s: post-SSA IR changed" in out
        assert "downstream  main: calls dirty procedure(s): s" in out

    def test_explain_invalidation_implies_cache(self, program_file, capsys):
        import os

        from repro.engine.cache import default_cache_root

        # No --cache/--cache-dir: the flag alone must still produce a
        # report (using the default cache root).
        env = os.environ.get("REPRO_CACHE_DIR")
        try:
            os.environ["REPRO_CACHE_DIR"] = os.path.join(
                os.path.dirname(program_file), "implied-cache"
            )
            assert main(
                ["analyze", program_file, "--explain-invalidation"]
            ) == 0
            assert "--- invalidation ---" in capsys.readouterr().out
        finally:
            if env is None:
                os.environ.pop("REPRO_CACHE_DIR", None)
            else:
                os.environ["REPRO_CACHE_DIR"] = env

    def test_profile_to_stdout(self, program_file, capsys):
        assert main(["analyze", program_file, "--profile"]) == 0
        out = capsys.readouterr().out
        assert "--- profile ---" in out
        assert '"stages"' in out

    def test_profile_to_file(self, program_file, tmp_path, capsys):
        import json

        destination = tmp_path / "profile.json"
        assert main(
            ["analyze", program_file, "--profile", str(destination)]
        ) == 0
        assert "profile written" in capsys.readouterr().out
        data = json.loads(destination.read_text())
        assert "stages" in data and "counters" in data


class TestCompare:
    def test_compare_lists_all_kinds(self, program_file, capsys):
        assert main(["compare", program_file]) == 0
        out = capsys.readouterr().out
        for kind in ("literal", "intraprocedural", "pass_through", "polynomial"):
            assert kind in out


class TestParser:
    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_jump_kind_rejected(self, program_file):
        with pytest.raises(SystemExit):
            main(["analyze", program_file, "--jump", "quantum"])


PROGRAM_WITH_IO = (
    "      PROGRAM MAIN\n"
    "      READ *, X\n"
    "      PRINT *, X * 2\n"
    "      END\n"
)

CONFLICT_PROGRAM = (
    "      PROGRAM MAIN\n"
    "      CALL C(4)\n      CALL C(8)\n      END\n"
    "      SUBROUTINE C(S)\n      A = S + 1\n      END\n"
)


class TestRun:
    def test_executes_and_prints(self, tmp_path, capsys):
        path = tmp_path / "io.f"
        path.write_text(PROGRAM_WITH_IO)
        assert main(["run", str(path), "--input", "21"]) == 0
        out = capsys.readouterr().out
        assert "42" in out
        assert "instructions executed" in out

    def test_fuel_flag(self, tmp_path):
        path = tmp_path / "loop.f"
        path.write_text(
            "      PROGRAM MAIN\n      X = 1\n"
            "      DO WHILE (X .GT. 0)\n      X = X + 1\n      ENDDO\n"
            "      END\n"
        )
        import pytest as _pytest
        from repro.ir.interp import InterpreterError

        with _pytest.raises(InterpreterError):
            main(["run", str(path), "--fuel", "500"])


class TestCloneCommand:
    def test_reports_clones(self, tmp_path, capsys):
        path = tmp_path / "c.f"
        path.write_text(CONFLICT_PROGRAM)
        assert main(["clone", str(path)]) == 0
        out = capsys.readouterr().out
        assert "cloned c ->" in out
        assert "after cloning" in out


class TestIntegrateCommand:
    def test_reports_growth(self, tmp_path, capsys):
        path = tmp_path / "c.f"
        path.write_text(CONFLICT_PROGRAM)
        assert main(["integrate", str(path)]) == 0
        out = capsys.readouterr().out
        assert "procedure integration" in out
        assert "code growth" in out


class TestSuiteCommand:
    def test_writes_programs(self, tmp_path, capsys):
        out = tmp_path / "suite"
        assert main(["suite", "--out", str(out)]) == 0
        written = sorted(p.name for p in out.glob("*.f"))
        assert "ocean.f" in written
        assert len(written) == 12
        # Each written program must itself parse and analyze.
        from repro.ipcp.driver import analyze_file

        result = analyze_file(str(out / "trfd.f"))
        assert result.substituted_constants > 0


class TestStatsFlag:
    def test_stats_printed(self, program_file, capsys):
        assert main(["analyze", program_file, "--stats"]) == 0
        out = capsys.readouterr().out
        assert "statistics" in out
        assert "forward jump functions" in out


class TestDotAndGsaFlags:
    def test_dot_writes_files(self, program_file, tmp_path, capsys):
        out = tmp_path / "dots"
        assert main(["analyze", program_file, "--dot", str(out)]) == 0
        assert (out / "callgraph.dot").exists()
        assert "Graphviz files written" in capsys.readouterr().out

    def test_gsa_flag(self, program_file, capsys):
        assert main(["analyze", program_file, "--gsa"]) == 0
        assert "gsa" in capsys.readouterr().out


BROKEN_PROGRAM = (
    "      PROGRAM MAIN\n"
    "      N = 6 +\n"
    "      CALL S(N\n"
    "      END\n"
)

MIXED_PROGRAM = (
    "      PROGRAM MAIN\n"
    "      CALL GOOD(2)\n"
    "      END\n"
    "      SUBROUTINE GOOD(K)\n"
    "      A = K + 1\n"
    "      RETURN\n"
    "      END\n"
    "      SUBROUTINE BAD(X)\n"
    "      Y = ((X\n"
    "      RETURN\n"
    "      END\n"
)


@pytest.fixture
def broken_file(tmp_path):
    path = tmp_path / "broken.f"
    path.write_text(BROKEN_PROGRAM)
    return str(path)


@pytest.fixture
def mixed_file(tmp_path):
    path = tmp_path / "mixed.f"
    path.write_text(MIXED_PROGRAM)
    return str(path)


class TestAnalyzeExitCodes:
    """The documented 0/1/2 contract across --strict and budget flags."""

    @pytest.mark.parametrize(
        "extra",
        [
            [],
            ["--strict"],
            ["--verify-ir"],
            ["--strict", "--verify-ir"],
            ["--solver-fuel", "1000"],
            ["--sccp-fuel", "100000"],
            ["--strict", "--solver-fuel", "1000"],
        ],
        ids=lambda extra: " ".join(extra) or "default",
    )
    def test_exit_0_clean(self, program_file, extra, capsys):
        assert main(["analyze", program_file, *extra]) == 0

    @pytest.mark.parametrize(
        "extra",
        [[], ["--strict"], ["--solver-fuel", "1000"]],
        ids=lambda extra: " ".join(extra) or "default",
    )
    def test_exit_1_diagnostics(self, broken_file, extra, capsys):
        assert main(["analyze", broken_file, *extra]) == 1
        assert "error" in capsys.readouterr().err

    def test_exit_1_mixed_still_reports_healthy_procedures(
        self, mixed_file, capsys
    ):
        """Resilient mode: diagnostics exit, but CONSTANTS of the
        parseable procedures are still printed."""
        assert main(["analyze", mixed_file]) == 1
        captured = capsys.readouterr()
        assert "CONSTANTS(good)" in captured.out
        assert "error" in captured.err

    def test_exit_2_strict_budget_demotion(self, program_file, capsys):
        """--strict turns a budget demotion into an internal failure."""
        assert main(["analyze", program_file, "--strict", "--solver-fuel", "0"]) == 2
        assert "degraded" in capsys.readouterr().err

    def test_exit_0_resilient_budget_demotion(self, program_file, capsys):
        """Without --strict the same starved budget only degrades."""
        assert main(["analyze", program_file, "--solver-fuel", "0"]) == 0
        assert "degraded" in capsys.readouterr().err

    def test_exit_2_strict_tight_budget_matrix(self, program_file, capsys):
        """Every strict budget-exhaustion combination lands on 2, never
        an unhandled exception."""
        for flags in (
            ["--solver-fuel", "0"],
            ["--solver-fuel", "0", "--max-poly-terms", "0"],
        ):
            code = main(["analyze", program_file, "--strict", *flags])
            assert code == 2, flags
            capsys.readouterr()

    def test_exit_1_missing_file(self, tmp_path, capsys):
        assert main(["analyze", str(tmp_path / "absent.f")]) == 1
        assert "cannot read" in capsys.readouterr().err


class TestOracleCommand:
    def test_clean_campaign_exits_zero(self, capsys):
        assert main(["oracle", "--trials", "3", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "3 trial(s)" in out
        assert "0 failed" in out

    def test_property_filter_and_size_flags(self, capsys):
        code = main(
            [
                "oracle", "--trials", "2", "--seed", "5",
                "--procedures", "2", "--max-statements", "4",
                "--property", "soundness",
            ]
        )
        assert code == 0

    def test_failing_campaign_writes_corpus_and_exits_one(
        self, tmp_path, capsys, monkeypatch
    ):
        from repro.lattice import LatticeValue

        original = LatticeValue.meet

        def broken(self, other):
            if (
                self.is_constant
                and other.is_constant
                and self.value != other.value
            ):
                return self
            return original(self, other)

        monkeypatch.setattr(LatticeValue, "meet", broken)
        corpus = tmp_path / "corpus"
        code = main(
            ["oracle", "--trials", "4", "--seed", "0", "--corpus", str(corpus)]
        )
        assert code == 1
        assert list(corpus.glob("seed*_soundness.f"))
        assert "failed" in capsys.readouterr().out
