"""Unit tests for the optimization passes (:mod:`repro.opt.passes`).

Every pass is checked two ways: its report counters say it changed
something, and executing the optimized program produces the same PRINT
output as a fresh (never-analyzed) lowering — with strictly fewer
dynamic steps where the pass's whole point is step reduction.
"""

import pytest

from repro.engine.memo import fresh_program
from repro.ir.interp import run_program
from repro.opt import PASS_NAMES, optimize_source, parse_passes

CONSTANT_GUARD_LOOP = (
    "      PROGRAM MAIN\n"
    "      INTEGER I, S, K\n"
    "      K = 3\n"
    "      S = 0\n"
    "      DO 10 I = 1, 100\n"
    "      IF (K .GT. 0) THEN\n"
    "      S = S + I\n"
    "      ELSE\n"
    "      S = S - I\n"
    "      ENDIF\n"
    " 10   CONTINUE\n"
    "      PRINT *, S\n"
    "      END\n"
)

INVARIANT_GUARD_LOOP = (
    "      PROGRAM MAIN\n"
    "      INTEGER I, S, K\n"
    "      READ *, K\n"
    "      S = 0\n"
    "      DO 10 I = 1, 50\n"
    "      IF (K .GT. 0) THEN\n"
    "      S = S + I\n"
    "      ELSE\n"
    "      S = S - I\n"
    "      ENDIF\n"
    " 10   CONTINUE\n"
    "      PRINT *, S\n"
    "      END\n"
)

CALL_CHAIN = (
    "      PROGRAM MAIN\n"
    "      INTEGER K, R\n"
    "      K = 21\n"
    "      CALL TWICE(K, R)\n"
    "      PRINT *, R\n"
    "      END\n"
    "      SUBROUTINE TWICE(A, B)\n"
    "      INTEGER A, B\n"
    "      B = A * 2\n"
    "      END\n"
)


def _both_traces(source, inputs=(), passes=PASS_NAMES):
    original = run_program(fresh_program(source, "orig.f"), inputs, 1_000_000)
    result, report = optimize_source(source, passes=tuple(passes))
    optimized = run_program(result.program, inputs, 4_000_000)
    return original, optimized, report


class TestFold:
    def test_substitutes_and_folds(self):
        original, optimized, report = _both_traces(
            CALL_CHAIN, passes=("fold",)
        )
        assert optimized.output == original.output
        stats = report.per_pass["fold"]
        assert stats.substituted_uses > 0
        assert stats.folded_expressions > 0

    def test_records_used_by_facts(self):
        _, _, report = _both_traces(CALL_CHAIN, passes=("fold",))
        assert any(
            fact.startswith("fold@") for facts in report.used_by.values()
            for fact in facts
        )


class TestBranches:
    def test_folds_constant_guard(self):
        original, optimized, report = _both_traces(
            CONSTANT_GUARD_LOOP, passes=("fold", "branches")
        )
        assert optimized.output == original.output
        assert report.per_pass["branches"].folded_branches >= 1
        assert optimized.steps < original.steps
        assert optimized.branches < original.branches

    def test_removes_unreachable_blocks(self):
        _, _, report = _both_traces(
            CONSTANT_GUARD_LOOP, passes=("fold", "branches")
        )
        assert report.per_pass["branches"].removed_blocks >= 1


class TestUnswitch:
    @pytest.mark.parametrize("inputs", [(5,), (-3,)])
    def test_hoists_invariant_guard(self, inputs):
        original, optimized, report = _both_traces(
            INVARIANT_GUARD_LOOP, inputs, passes=("unswitch",)
        )
        assert optimized.output == original.output
        assert report.per_pass["unswitch"].unswitched_loops >= 1
        # The per-iteration guard evaluation is gone: the branch count
        # collapses from one per iteration to ~one per loop.
        assert optimized.branches < original.branches
        assert optimized.steps < original.steps


class TestCallArgs:
    def test_materializes_constant_arguments(self):
        original, optimized, report = _both_traces(
            CALL_CHAIN, passes=("callargs",)
        )
        assert optimized.output == original.output
        assert report.per_pass["callargs"].materialized_args >= 1


class TestFullPipeline:
    def test_all_passes_compose(self):
        original, optimized, report = _both_traces(CONSTANT_GUARD_LOOP)
        assert optimized.output == original.output
        assert optimized.steps < original.steps
        assert report.total_changes > 0
        assert list(report.passes) == list(PASS_NAMES)

    def test_dynamic_counters_exposed(self):
        original, _, _ = _both_traces(CONSTANT_GUARD_LOOP)
        counters = original.dynamic_counters()
        assert set(counters) == {"steps", "branches", "calls"}
        assert counters["steps"] == original.steps


class TestParsePasses:
    def test_default_is_all(self):
        assert parse_passes(None) == PASS_NAMES
        assert parse_passes("") == PASS_NAMES

    def test_subset_in_canonical_order(self):
        assert parse_passes("branches,fold") == ("fold", "branches")

    def test_unknown_pass_rejected(self):
        with pytest.raises(ValueError, match="sccp"):
            parse_passes("fold,sccp")
