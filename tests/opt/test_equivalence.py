"""Differential equivalence over the golden corpus.

Every golden program and every multi-file golden project must interpret
byte-identically before and after each optimization pass alone and the
full pipeline, plus a seeded 50-trial generator campaign. Programs the
reference interpreter cannot serve as an oracle for (READ exhaustion,
fuel, analysis-unavailable inputs) are skipped, mirroring the
soundness harness.
"""

import pytest

from repro.config import BudgetExceeded
from repro.frontend.errors import FrontendError
from repro.ir.interp import InterpreterError
from repro.oracle.equivalence import (
    PASS_SUBSETS,
    check_optimized_equivalence,
    run_opt_oracle,
)
from repro.oracle.golden import golden_programs, golden_projects

#: Generous input feed: programs that READ consume a prefix; programs
#: that read more than this are skipped via InterpreterError.
INPUTS = (3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8)

_SUBSET_IDS = ["+".join(subset) for subset in PASS_SUBSETS]

_BASELINE_VERIFIES = {}


def _baseline_verifies(source, config) -> bool:
    """Whether the *analyzed but unoptimized* program passes the SSA
    verifier. A handful of suite-builder golden programs violate the
    verifier's symbol-resolution invariant before any optimization
    runs; post-pass verification is only meaningful (and only
    attributable to the optimizer) where the baseline is clean."""
    key = id(source)
    cached = _BASELINE_VERIFIES.get(key)
    if cached is not None:
        return cached
    from repro.ipcp.driver import analyze_source
    from repro.ir.verify import VerificationError, verify_program

    result = analyze_source(source, config, filename="baseline.f")
    try:
        verify_program(result.program, ssa=True, stage="baseline")
        verdict = True
    except VerificationError:
        verdict = False
    _BASELINE_VERIFIES[key] = verdict
    return verdict


def _assert_equivalent(source, config, subset):
    try:
        detail = check_optimized_equivalence(
            source, INPUTS, config=config, passes=subset,
            verify=_baseline_verifies(source, config),
        )
    except InterpreterError as error:
        pytest.skip(f"original not executable: {error}")
    except (FrontendError, BudgetExceeded) as error:
        pytest.skip(f"analysis unavailable: {error}")
    assert detail is None, detail


@pytest.mark.parametrize("subset", PASS_SUBSETS, ids=_SUBSET_IDS)
@pytest.mark.parametrize("name", sorted(golden_programs()))
def test_golden_program_equivalence(name, subset):
    program = golden_programs()[name]
    _assert_equivalent(program.source, program.config, subset)


def _project_baseline_verifies(project) -> bool:
    key = project.name
    cached = _BASELINE_VERIFIES.get(key)
    if cached is not None:
        return cached
    from repro.ir.verify import VerificationError, verify_program
    from repro.linkage.linker import analyze_linked_sources

    result, _link = analyze_linked_sources(
        list(project.files), project.config, entry=project.entry
    )
    verdict = False
    if result is not None:
        try:
            verify_program(result.program, ssa=True, stage="baseline")
            verdict = True
        except VerificationError:
            verdict = False
    _BASELINE_VERIFIES[key] = verdict
    return verdict


@pytest.mark.parametrize("subset", PASS_SUBSETS, ids=_SUBSET_IDS)
@pytest.mark.parametrize("name", sorted(golden_projects()))
def test_golden_project_equivalence(name, subset):
    from repro.oracle.equivalence import check_optimized_project_equivalence

    project = golden_projects()[name]
    try:
        detail = check_optimized_project_equivalence(
            list(project.files), entry=project.entry, inputs=INPUTS,
            config=project.config, passes=subset,
            verify=_project_baseline_verifies(project),
        )
    except ValueError as error:
        pytest.skip(f"project does not link: {error}")
    except InterpreterError as error:
        pytest.skip(f"original not executable: {error}")
    except (FrontendError, BudgetExceeded) as error:
        pytest.skip(f"analysis unavailable: {error}")
    assert detail is None, detail


def test_seeded_equivalence_campaign():
    """The PR's acceptance campaign: 50 seeded generator programs,
    every pass subset, zero equivalence failures."""
    report = run_opt_oracle(trials=50, seed=0)
    assert report.trials == 50
    assert report.failures == [], report.summary()


def test_campaign_minimizes_and_persists_failures(tmp_path, monkeypatch):
    """A deliberately wrong pass makes the campaign fail, and the
    failure flows through the PR 2 minimizer into the corpus."""
    import repro.opt.passes as opt_passes

    real_fold = opt_passes.fold_constants

    def wrong_fold(procedure, sccp, report):
        from repro.ir.instructions import Const, Print

        changed = real_fold(procedure, sccp, report)
        # Corrupt observable behaviour without breaking IR structure:
        # append a junk operand to every PRINT.
        for block in procedure.cfg.blocks:
            for instruction in block.instructions:
                if isinstance(instruction, Print):
                    instruction.items.append(Const(999))
                    changed += 1
        return changed

    monkeypatch.setattr(opt_passes, "fold_constants", wrong_fold)
    corpus = tmp_path / "corpus"
    report = run_opt_oracle(
        trials=6, seed=0, corpus_dir=str(corpus), minimize=True
    )
    assert report.failures, "wrong fold pass must be caught"
    first = report.failures[0]
    assert first.discrepancies[0].property == "equivalence"
    assert report.minimized.get(first.seed)
    assert list(corpus.glob("*.json")) or list(corpus.iterdir())
