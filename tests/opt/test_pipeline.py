"""Pipeline-level behaviour: determinism, verification, the ``opt``
cache namespace, and observability counters."""

import pytest

from repro.config import AnalysisConfig
from repro.engine.core import Engine
from repro.ir.verify import VerificationError
from repro.opt import PASS_NAMES, optimize_source

SOURCE = (
    "      PROGRAM MAIN\n"
    "      INTEGER I, S, K\n"
    "      K = 3\n"
    "      S = 0\n"
    "      DO 10 I = 1, 20\n"
    "      IF (K .GT. 0) THEN\n"
    "      S = S + I\n"
    "      ELSE\n"
    "      S = S - I\n"
    "      ENDIF\n"
    " 10   CONTINUE\n"
    "      PRINT *, S\n"
    "      CALL SHOW(K, S)\n"
    "      END\n"
    "      SUBROUTINE SHOW(A, B)\n"
    "      INTEGER A, B\n"
    "      PRINT *, A + B\n"
    "      END\n"
)


class TestDeterminism:
    def test_report_render_is_deterministic(self):
        _, first = optimize_source(SOURCE)
        _, second = optimize_source(SOURCE)
        assert first.render() == second.render()
        assert first.to_payload() == second.to_payload()

    def test_pass_subset_reports_only_those_passes(self):
        _, report = optimize_source(SOURCE, passes=("fold",))
        assert report.passes == ["fold"]
        assert "branches" not in report.per_pass


class TestVerification:
    def test_verify_runs_after_every_pass(self):
        _, report = optimize_source(SOURCE, verify=True)
        assert report.verified
        assert "IR verified after every pass" in report.render()

    def test_broken_pass_is_caught(self, monkeypatch):
        import repro.opt.passes as opt_passes

        def corrupt(procedure, sccp, report):
            # Drop every terminator: structurally invalid IR that the
            # post-pass verifier must reject.
            for block in procedure.cfg.blocks:
                block.instructions = block.instructions[:-1]
            return 1

        monkeypatch.setattr(opt_passes, "fold_constants", corrupt)
        with pytest.raises(VerificationError):
            optimize_source(SOURCE, passes=("fold",), verify=True)


class TestOptCache:
    def test_record_then_replay(self, tmp_path):
        config = AnalysisConfig()
        engine = Engine(jobs=1, cache_dir=str(tmp_path))
        try:
            assert engine.cached_opt(SOURCE, config, PASS_NAMES) is None
            result, report = optimize_source(SOURCE, config)
            engine.record_opt(SOURCE, config, PASS_NAMES, result, report)
            payload = engine.cached_opt(SOURCE, config, PASS_NAMES)
            assert payload is not None
            assert payload["report"] == report.render()
            assert payload["opt"]["total_changes"] == report.total_changes
            assert payload["ir"] is not None
        finally:
            engine.close()

    def test_key_distinguishes_pass_subsets(self, tmp_path):
        config = AnalysisConfig()
        engine = Engine(jobs=1, cache_dir=str(tmp_path))
        try:
            result, report = optimize_source(SOURCE, config, passes=("fold",))
            engine.record_opt(SOURCE, config, ("fold",), result, report)
            assert engine.cached_opt(SOURCE, config, ("fold",)) is not None
            assert engine.cached_opt(SOURCE, config, PASS_NAMES) is None
        finally:
            engine.close()


class TestMetrics:
    def test_pipeline_counters_increment(self):
        from repro.obs import metrics

        metrics.push_scope()
        try:
            optimize_source(SOURCE)
            counters = metrics.default_registry().counters()
        finally:
            metrics.pop_scope()
        assert counters.get("opt_pipeline_runs", 0) >= 1
        assert counters.get("opt_total_changes", 0) > 0
