"""CLI coverage for the optimization backend: the ``optimize``
subcommand, ``--optimize`` on analyze/link/batch, the warm-cache
replay, the ``--verify-ir`` safety net, and ``oracle --opt-trials``."""

import pytest

from repro.cli import main

PROGRAM = (
    "      PROGRAM MAIN\n"
    "      INTEGER I, S, K\n"
    "      K = 3\n"
    "      S = 0\n"
    "      DO 10 I = 1, 20\n"
    "      IF (K .GT. 0) THEN\n"
    "      S = S + I\n"
    "      ELSE\n"
    "      S = S - I\n"
    "      ENDIF\n"
    " 10   CONTINUE\n"
    "      PRINT *, S\n"
    "      CALL SHOW(K, S)\n"
    "      END\n"
    "      SUBROUTINE SHOW(A, B)\n"
    "      INTEGER A, B\n"
    "      PRINT *, A + B\n"
    "      END\n"
)

MAIN_F = (
    "      PROGRAM MAIN\n"
    "      INTEGER K, R\n"
    "      EXTERNAL TWICE\n"
    "      K = 21\n"
    "      CALL TWICE(K, R)\n"
    "      PRINT *, R\n"
    "      END\n"
)
LIB_F = (
    "      SUBROUTINE TWICE(A, B)\n"
    "      INTEGER A, B\n"
    "      B = A * 2\n"
    "      END\n"
)


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "prog.f"
    path.write_text(PROGRAM)
    return str(path)


class TestOptimizeCommand:
    def test_default_run(self, program_file, capsys):
        assert main(["optimize", program_file]) == 0
        out = capsys.readouterr().out
        assert "Optimization: passes fold, branches, unswitch, callargs" in out
        assert "total:" in out

    def test_pass_subset(self, program_file, capsys):
        assert main(["optimize", program_file, "--passes", "fold"]) == 0
        out = capsys.readouterr().out
        assert "Optimization: passes fold\n" in out
        assert "branches:" not in out

    def test_unknown_pass_rejected(self, program_file, capsys):
        assert main(["optimize", program_file, "--passes", "sccp"]) == 1
        assert "sccp" in capsys.readouterr().err

    def test_dump_ir(self, program_file, capsys):
        assert main(["optimize", program_file, "--dump-ir"]) == 0
        out = capsys.readouterr().out
        assert "--- optimized IR ---" in out
        assert "program main" in out

    def test_output_file(self, program_file, tmp_path, capsys):
        target = tmp_path / "opt.ir"
        assert main(["optimize", program_file, "-o", str(target)]) == 0
        assert "[optimized IR written to" in capsys.readouterr().out
        assert "program main" in target.read_text()

    def test_verify_ir_accepts_healthy_pipeline(self, program_file, capsys):
        assert main(["optimize", program_file, "--verify-ir"]) == 0
        assert "IR verified after every pass" in capsys.readouterr().out

    def test_verify_ir_catches_broken_pass(
        self, program_file, monkeypatch, capsys
    ):
        import repro.opt.passes as opt_passes

        def corrupt(procedure, sccp, report):
            for block in procedure.cfg.blocks:
                block.instructions = block.instructions[:-1]
            return 1

        monkeypatch.setattr(opt_passes, "fold_constants", corrupt)
        assert main(["optimize", program_file, "--verify-ir"]) == 2
        assert "internal error" in capsys.readouterr().err


class TestOptimizeWarmCache:
    def test_replay_is_byte_identical(self, program_file, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        argv = ["optimize", program_file, "--dump-ir", "--cache-dir", cache]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert warm == cold

    def test_replay_writes_same_ir_file(self, program_file, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        first, second = tmp_path / "a.ir", tmp_path / "b.ir"
        assert main(["optimize", program_file, "--cache-dir", cache,
                     "-o", str(first)]) == 0
        assert main(["optimize", program_file, "--cache-dir", cache,
                     "-o", str(second)]) == 0
        capsys.readouterr()
        assert first.read_text() == second.read_text()

    def test_verify_ir_bypasses_replay(self, program_file, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(["optimize", program_file, "--cache-dir", cache]) == 0
        capsys.readouterr()
        # --verify-ir must re-run the pipeline (and the verifier), not
        # replay: its output carries the verification line.
        assert main(["optimize", program_file, "--cache-dir", cache,
                     "--verify-ir"]) == 0
        assert "IR verified after every pass" in capsys.readouterr().out


class TestAnalyzeOptimize:
    def test_reports_passes(self, program_file, capsys):
        assert main(["analyze", program_file, "--optimize"]) == 0
        out = capsys.readouterr().out
        assert "CONSTANTS(show)" in out
        assert "Optimization: passes" in out

    def test_dump_ir_is_optimized(self, program_file, capsys):
        assert main(
            ["analyze", program_file, "--optimize", "--dump-ir"]
        ) == 0
        out = capsys.readouterr().out
        assert "--- optimized IR ---" in out
        assert "--- SSA IR ---" not in out

    def test_explain_notes_consuming_pass(self, program_file, capsys):
        assert main(
            ["analyze", program_file, "--optimize", "--explain", "a@show"]
        ) == 0
        out = capsys.readouterr().out
        assert "a@show = 3" in out
        assert "used_by: fold@show:" in out

    def test_explain_without_optimize_has_no_used_by(
        self, program_file, capsys
    ):
        assert main(
            ["analyze", program_file, "--explain", "a@show"]
        ) == 0
        assert "used_by:" not in capsys.readouterr().out

    def test_unknown_pass_rejected(self, program_file, capsys):
        assert main(
            ["analyze", program_file, "--optimize", "--passes", "nope"]
        ) == 1
        assert "nope" in capsys.readouterr().err

    def test_optimize_does_not_poison_run_cache(
        self, program_file, tmp_path, capsys
    ):
        cache = str(tmp_path / "cache")
        assert main(["analyze", program_file, "--optimize",
                     "--cache-dir", cache]) == 0
        capsys.readouterr()
        # A later plain --dump-ir must see SSA IR, not the destructed
        # optimized program.
        assert main(["analyze", program_file, "--dump-ir",
                     "--cache-dir", cache]) == 0
        out = capsys.readouterr().out
        assert "--- SSA IR ---" in out
        assert "phi" in out or "_1" in out


class TestLinkOptimize:
    def test_link_optimize(self, tmp_path, capsys):
        one = tmp_path / "main.f"
        two = tmp_path / "lib.f"
        one.write_text(MAIN_F)
        two.write_text(LIB_F)
        assert main(["link", str(one), str(two), "--optimize",
                     "--dump-ir"]) == 0
        out = capsys.readouterr().out
        assert "Optimization: passes" in out
        assert "print 42" in out


class TestBatchOptimize:
    def test_summary_line_and_report(self, program_file, capsys):
        assert main(["batch", program_file, "--optimize", "--report"]) == 0
        out = capsys.readouterr().out
        assert "optimized (" in out
        assert "Optimization: passes" in out

    def test_warm_replay_keeps_opt_summary(
        self, program_file, tmp_path, capsys
    ):
        cache = str(tmp_path / "cache")
        argv = ["batch", program_file, "--optimize", "--cache-dir", cache]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "[replayed]" in out
        assert "optimized (" in out


class TestOracleOptTrials:
    def test_small_campaign_passes(self, capsys):
        assert main(["oracle", "--opt-trials", "3"]) == 0
        assert "3 trial(s)" in capsys.readouterr().out
