"""Codec round-trips: summaries must decode into structurally equal
objects against an isomorphic (freshly re-lowered) program."""

import pytest

from repro.config import AnalysisConfig
from repro.engine import summaries
from repro.ipcp.driver import analyze_source, prepare_program
from repro.ipcp.jump_functions import build_forward_jump_functions
from repro.ipcp.return_functions import build_return_functions

from tests.conftest import lower

SOURCE = (
    "      PROGRAM MAIN\n      COMMON /C/ G\n      G = 4\n"
    "      CALL S(3, 10)\n      X = F(2)\n      END\n"
    "      SUBROUTINE S(A, B)\n      COMMON /C/ G\n"
    "      A = 2 * B + G\n      END\n"
    "      INTEGER FUNCTION F(N)\n      F = N * N + 1\n      END\n"
)


def built(text=SOURCE):
    program = lower(text)
    config = AnalysisConfig()
    callgraph, modref = prepare_program(program, config)
    return_map = build_return_functions(program, callgraph, modref)
    table = build_forward_jump_functions(
        program, callgraph, config.jump_function, return_map
    )
    return program, callgraph, return_map, table


class TestVarrefs:
    def test_formal_roundtrip(self):
        program, *_ = built()
        s = program.procedure("s")
        ref = summaries.encode_varref(s.formals[1], s)
        assert summaries.resolve_varref(ref, program) is s.formals[1]

    def test_global_roundtrip(self):
        program, *_ = built()
        g = program.scalar_globals()[0]
        ref = summaries.encode_varref(g, program.procedure("s"))
        assert summaries.resolve_varref(ref, program) is g

    def test_result_roundtrip(self):
        program, *_ = built()
        f = program.procedure("f")
        ref = summaries.encode_varref(f.result_var, f)
        assert summaries.resolve_varref(ref, program) is f.result_var

    def test_local_rejected(self):
        program, *_ = built()
        main = program.procedure("main")
        local = main.symbols.lookup("x")
        assert local is not None and not local.is_global
        with pytest.raises(ValueError):
            summaries.encode_varref(local, main)

    def test_roundtrip_across_fresh_lowering(self):
        program, *_ = built()
        s = program.procedure("s")
        ref = summaries.encode_varref(s.formals[0], s)
        other = lower(SOURCE)
        resolved = summaries.resolve_varref(ref, other)
        assert resolved is other.procedure("s").formals[0]
        assert resolved is not s.formals[0]


class TestReturnFunctionCodec:
    def test_roundtrip_structural_equality(self):
        program, _, return_map, _ = built()
        for fn in return_map:
            data = summaries.encode_return_function(fn, program)
            back = summaries.decode_return_function(data, program)
            assert back.procedure_name == fn.procedure_name
            assert back.target is fn.target
            assert back.expr == fn.expr
            assert back.polynomial == fn.polynomial

    def test_roundtrip_is_json_safe(self):
        import json

        program, _, return_map, _ = built()
        for fn in return_map:
            data = summaries.encode_return_function(fn, program)
            rehydrated = json.loads(json.dumps(data))
            back = summaries.decode_return_function(rehydrated, program)
            assert back.polynomial == fn.polynomial

    def test_encoding_is_deterministic(self):
        program, _, return_map, _ = built()
        a = lower(SOURCE)
        config = AnalysisConfig()
        cg, mr = prepare_program(a, config)
        other_map = build_return_functions(a, cg, mr)
        ours = sorted(
            str(summaries.encode_return_function(fn, program))
            for fn in return_map
        )
        theirs = sorted(
            str(summaries.encode_return_function(fn, a)) for fn in other_map
        )
        assert ours == theirs


class TestForwardFunctionCodec:
    def test_roundtrip(self):
        program, callgraph, _, table = built()
        for procedure in program:
            for encoded in summaries.encode_forward_functions_of(
                table, procedure, program
            ):
                fn = summaries.decode_forward_function(encoded, program)
                original = table.lookup(fn.call, fn.target)
                assert original is not None
                assert fn.kind == original.kind
                assert fn.constant == original.constant
                assert fn.source_var is original.source_var
                assert fn.polynomial == original.polynomial


class TestConstantsCodec:
    def test_roundtrip(self):
        result = analyze_source(SOURCE)
        payload = summaries.encode_constants(result.constants, result.program)
        back = summaries.decode_constants(payload, result.program)
        assert back.format_report() == result.constants.format_report()
        for procedure in result.program:
            assert back.val_set(procedure.name) == result.constants.val_set(
                procedure.name
            )


class TestSubstitutionCodec:
    def test_roundtrip(self):
        from repro.ipcp.substitution import SubstitutionReport

        result = analyze_source(SOURCE)
        rebuilt = SubstitutionReport()
        for procedure in result.program:
            data = summaries.encode_substitution_of(
                result.substitution, procedure.name
            )
            summaries.decode_substitution_into(data, procedure, rebuilt)
        assert rebuilt.per_procedure == result.substitution.per_procedure
        assert rebuilt.total == result.substitution.total
        original = result.transformed_source()
        result.substitution = rebuilt
        assert result.transformed_source() == original
