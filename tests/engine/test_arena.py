"""Shared-memory arena lifecycle and engine equivalence.

Covers the crash-safety contract (attach after a dead owner, idempotent
unlink, stale-segment reaping), fork semantics (children re-lock with
their own file description; MAP_SHARED makes writes visible both
ways), and the headline invariant: an arena-backed parallel engine run
is byte-identical to the serial pipeline while moving **zero** summary
payload entries over the pool's pickle channel."""

from __future__ import annotations

import os
import struct

import pytest

from repro.config import AnalysisConfig
from repro.engine import Engine
from repro.engine import arena as arena_mod
from repro.engine.arena import (
    ArenaAttachError,
    ArenaFullError,
    ArenaReadError,
    SummaryArena,
    reap_stale,
)
from repro.ipcp.driver import analyze_source
from repro.obs import metrics
from repro.suite.generator import GeneratorConfig, generate_case

pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="arena tests exercise fork semantics"
)


def fingerprint_run(text, engine=None):
    result = analyze_source(text, AnalysisConfig(), engine=engine)
    return (
        result.constants.format_report(),
        dict(result.substitution.per_procedure),
        result.transformed_source(),
    )


class TestLifecycle:
    def test_roundtrip(self, tmp_path):
        arena = SummaryArena.create(
            capacity=64 * 1024, directory=str(tmp_path)
        )
        try:
            index = arena.append("ret", "k1", {"a": [1, -2], "b": None})
            assert index == 0
            assert arena.read(0) == ("ret", "k1", {"a": [1, -2], "b": None})
            assert arena.read_payload(0, expect_key="k1")["a"] == [1, -2]
            assert arena.count == 1
        finally:
            arena.destroy()

    def test_append_many_indices_and_order(self, tmp_path):
        arena = SummaryArena.create(
            capacity=64 * 1024, directory=str(tmp_path)
        )
        try:
            records = [("ret", f"k{i}", {"i": i}) for i in range(5)]
            assert arena.append_many(records) == [0, 1, 2, 3, 4]
            assert arena.read_range(1, 4) == [{"i": 1}, {"i": 2}, {"i": 3}]
        finally:
            arena.destroy()

    def test_attach_cached_same_process_shares_live_object(self, tmp_path):
        arena = SummaryArena.create(
            capacity=4096, directory=str(tmp_path)
        )
        try:
            assert SummaryArena.attach_cached(arena.path) is arena
        finally:
            arena.destroy()

    def test_fresh_attach_sees_later_writes(self, tmp_path):
        arena = SummaryArena.create(
            capacity=64 * 1024, directory=str(tmp_path)
        )
        try:
            reader = SummaryArena.attach(arena.path)
            try:
                assert reader.count == 0
                arena.append("fwd", "k", [1, 2, 3])
                # MAP_SHARED: the already-mapped reader sees the write.
                assert reader.count == 1
                assert reader.read_payload(0) == [1, 2, 3]
            finally:
                reader.close()
        finally:
            arena.destroy()

    def test_full_arena_raises_not_tears(self, tmp_path):
        arena = SummaryArena.create(
            capacity=4096, directory=str(tmp_path)
        )
        try:
            with pytest.raises(ArenaFullError):
                arena.append("ret", "k", "x" * 8192)
            # Nothing was half-written.
            assert arena.count == 0
            arena.append("ret", "k", "fits")
            assert arena.read_payload(1 - 1) == "fits"
        finally:
            arena.destroy()

    def test_codec_version_mismatch_refuses_attach(self, tmp_path):
        arena = SummaryArena.create(
            capacity=4096, directory=str(tmp_path)
        )
        path = arena.path
        arena.close()
        try:
            with open(path, "r+b") as handle:
                handle.seek(6)  # u16 codec version field
                handle.write(struct.pack("<H", 999))
            with pytest.raises(ArenaAttachError, match="foreign"):
                SummaryArena.attach(path)
        finally:
            os.unlink(path)

    def test_corrupted_record_detected_on_read(self, tmp_path):
        arena = SummaryArena.create(
            capacity=4096, directory=str(tmp_path)
        )
        try:
            arena.append("ret", "k", {"value": 12345})
            # Rot one body byte on disk, behind the mapping's back.
            with open(arena.path, "r+b") as handle:
                handle.seek(64 + 30)
                byte = handle.read(1)
                handle.seek(64 + 30)
                handle.write(bytes((byte[0] ^ 0xFF,)))
            fresh = SummaryArena.attach(arena.path)
            try:
                with pytest.raises(ArenaReadError):
                    fresh.read(0)
            finally:
                fresh.close()
        finally:
            arena.destroy()

    def test_read_beyond_committed_rejected(self, tmp_path):
        arena = SummaryArena.create(
            capacity=4096, directory=str(tmp_path)
        )
        try:
            arena.append("ret", "k", 1)
            with pytest.raises(ArenaReadError, match="beyond"):
                arena.read(1)
        finally:
            arena.destroy()

    def test_double_unlink_is_idempotent(self, tmp_path):
        arena = SummaryArena.create(
            capacity=4096, directory=str(tmp_path)
        )
        assert arena.unlink() is True
        assert arena.unlink() is False
        arena.close()
        arena.close()  # close is idempotent too

    def test_unlinked_segment_stays_readable_through_mapping(
        self, tmp_path
    ):
        arena = SummaryArena.create(
            capacity=4096, directory=str(tmp_path)
        )
        arena.append("ret", "k", "still here")
        arena.unlink()
        try:
            assert arena.read_payload(0) == "still here"
            with pytest.raises(ArenaAttachError):
                SummaryArena.attach(arena.path)
        finally:
            arena.close()


class TestForkSemantics:
    def test_child_append_visible_to_parent(self, tmp_path):
        arena = SummaryArena.create(
            capacity=64 * 1024, directory=str(tmp_path)
        )
        try:
            arena.append("ret", "parent", {"who": "parent"})
            pid = os.fork()
            if pid == 0:
                # Child: the inherited object must re-lock with its own
                # file description (flock is per open-file-description).
                try:
                    arena.append("ret", "child", {"who": "child"})
                    code = 0
                except BaseException:
                    code = 1
                os._exit(code)
            _, status = os.waitpid(pid, 0)
            assert os.waitstatus_to_exitcode(status) == 0
            assert arena.count == 2
            assert arena.read(1) == ("ret", "child", {"who": "child"})
        finally:
            arena.destroy()

    def test_attach_after_owner_crash(self, tmp_path):
        """A SIGKILLed (well, ``os._exit``-ed) owner leaves a segment
        that later processes can attach, read, and reap."""
        read_fd, write_fd = os.pipe()
        pid = os.fork()
        if pid == 0:
            try:
                os.close(read_fd)
                arena = SummaryArena.create(
                    capacity=4096, directory=str(tmp_path)
                )
                arena.append("ret", "legacy", [7, 8, 9])
                os.write(write_fd, arena.path.encode())
                os.close(write_fd)
            finally:
                os._exit(0)  # dies without unlink/close — the "crash"
        os.close(write_fd)
        path = b"".join(iter(lambda: os.read(read_fd, 4096), b"")).decode()
        os.close(read_fd)
        os.waitpid(pid, 0)
        assert os.path.exists(path)

        survivor = SummaryArena.attach(path)
        try:
            assert survivor.read_payload(0, expect_key="legacy") == [7, 8, 9]
        finally:
            survivor.close()

        # The owner pid is dead, so the reaper may collect the leak.
        base = metrics.snapshot()
        reaped = reap_stale(str(tmp_path))
        assert path in reaped
        assert not os.path.exists(path)
        assert not os.path.exists(path + ".lock")
        delta = metrics.delta_since(base)["counters"]
        assert delta.get("arena_reaped", 0) >= 1


class TestReaping:
    def test_reap_skips_live_owner_and_foreign_files(self, tmp_path):
        live = SummaryArena.create(
            capacity=4096, directory=str(tmp_path)
        )
        try:
            dead = tmp_path / "repro-arena-999999999-dead.seg"
            dead.write_bytes(b"leak")
            (tmp_path / "repro-arena-999999999-dead.seg.lock").touch()
            unrelated = tmp_path / "not-an-arena.seg"
            unrelated.write_bytes(b"keep")
            malformed = tmp_path / "repro-arena-nonnumeric.seg"
            malformed.write_bytes(b"keep")

            reaped = reap_stale(str(tmp_path))
            assert reaped == [str(dead)]
            assert not dead.exists()
            assert os.path.exists(live.path), "live owner must survive"
            assert unrelated.exists() and malformed.exists()
        finally:
            live.destroy()

    def test_reap_missing_directory_is_a_noop(self, tmp_path):
        assert reap_stale(str(tmp_path / "nowhere")) == []

    def test_daemon_restart_reaps_leaked_segments(self, tmp_path):
        """A crashed daemon leaks its segments; the next ``repro
        serve`` start sweeps the arena directory before serving."""
        import subprocess
        import sys

        from repro.serve.client import ReproClient, wait_for_server

        arena_dir = tmp_path / "arena"
        arena_dir.mkdir()
        leaked = arena_dir / "repro-arena-999999999-leak.seg"
        leaked.write_bytes(b"leak")
        socket_path = str(tmp_path / "reap.sock")

        env = dict(os.environ, REPRO_ARENA_DIR=str(arena_dir))
        env["PYTHONPATH"] = os.pathsep.join(
            part
            for part in ("src", env.get("PYTHONPATH"))
            if part
        )
        daemon = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--socket", socket_path, "--no-cache",
            ],
            env=env,
            cwd=os.path.join(os.path.dirname(__file__), "..", ".."),
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            assert wait_for_server(socket_path, timeout=15)
            assert not leaked.exists(), (
                "daemon start must reap dead-owner segments"
            )
            with ReproClient(socket_path, timeout=30) as client:
                client.shutdown()
            stderr = daemon.communicate(timeout=60)[1]
            assert daemon.returncode == 0, stderr
            assert "reaped 1 stale arena segment" in stderr
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait()


class TestEngineEquivalence:
    """Arena transport vs pickle transport vs disk cache over 24
    seeded programs — identical bytes, counter-proven transports."""

    GENERATOR = GeneratorConfig(procedures=6, max_statements_per_procedure=8)
    SEEDS = range(24)

    def test_24_seeds_arena_matches_serial_with_zero_pickle_payload(
        self, tmp_path
    ):
        os.environ[arena_mod.ENV_DIR] = str(tmp_path)
        stream_total = 0
        try:
            for seed in self.SEEDS:
                text = generate_case(seed, self.GENERATOR).source
                serial = fingerprint_run(text)
                base = metrics.snapshot()
                with Engine(jobs=2, executor="process") as engine:
                    parallel = fingerprint_run(text, engine=engine)
                delta = metrics.delta_since(base)["counters"]
                assert parallel == serial, f"seed {seed} diverged"
                # The arena carried every summary: nothing rode pickle.
                assert delta.get("engine_pickle_payload_entries", 0) == 0, (
                    f"seed {seed} leaked payload onto the pickle channel"
                )
                assert delta.get("arena_fallbacks", 0) == 0
                stream_total += delta.get("arena_stream_records", 0)
            # Some seeds have only empty return summaries (nothing to
            # exchange in either transport); across 24 the stream must
            # have carried real traffic.
            assert stream_total > 0, "no seed ever published to the arena"
            # No leaked segments: every run destroyed its arenas.
            leftovers = [
                name
                for name in os.listdir(str(tmp_path))
                if name.endswith(".seg")
            ]
            assert leftovers == []
        finally:
            del os.environ[arena_mod.ENV_DIR]

    def test_pickle_mode_still_identical_and_counter_distinguishes(self):
        # Seeds whose programs exchange non-empty return summaries (a
        # seed with all-empty summaries ships zero on both transports).
        for seed in (0, 7, 8):
            text = generate_case(seed, self.GENERATOR).source
            serial = fingerprint_run(text)
            base = metrics.snapshot()
            with Engine(jobs=2, executor="process", arena=False) as engine:
                parallel = fingerprint_run(text, engine=engine)
            delta = metrics.delta_since(base)["counters"]
            assert parallel == serial, f"seed {seed} diverged"
            assert delta.get("engine_pickle_payload_entries", 0) > 0, (
                "arena=False must move payloads over the pickle channel"
            )
            assert delta.get("arena_stream_records", 0) == 0

    def test_thread_executor_arena_identical(self):
        for seed in range(3):
            text = generate_case(seed, self.GENERATOR).source
            serial = fingerprint_run(text)
            with Engine(jobs=2, executor="thread") as engine:
                assert fingerprint_run(text, engine=engine) == serial

    def test_arena_run_matches_disk_cache_run(self, tmp_path):
        for seed in range(6):
            text = generate_case(seed, self.GENERATOR).source
            with Engine(jobs=2, executor="process") as engine:
                via_arena = fingerprint_run(text, engine=engine)
            cache_dir = str(tmp_path / f"cache{seed}")
            with Engine(cache_dir=cache_dir) as engine:
                cold = fingerprint_run(text, engine=engine)
            with Engine(cache_dir=cache_dir) as engine:
                warm = fingerprint_run(text, engine=engine)
                assert engine.cache.stats.hits > 0
            assert via_arena == cold == warm, f"seed {seed} diverged"
