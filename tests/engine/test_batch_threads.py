"""The batch thread executor is no longer serialized: files genuinely
overlap in time (worker engine state is thread-local, per-file metrics
land in thread-scoped registries) while output stays byte-identical to
the inline run — per-file reports *and* per-file metrics deltas."""

from __future__ import annotations

import threading
import time

import pytest

from repro import faults
from repro.config import AnalysisConfig
from repro.engine import batch
from repro.suite.generator import GeneratorConfig, generate_case

GENERATOR = GeneratorConfig(procedures=6, max_statements_per_procedure=8)


@pytest.fixture(autouse=True)
def _no_leaked_faults():
    faults.clear()
    yield
    faults.clear()


@pytest.fixture
def files(tmp_path):
    paths = []
    for seed in range(4):
        path = tmp_path / f"unit{seed}.f"
        path.write_text(generate_case(seed, GENERATOR).source)
        paths.append(str(path))
    return paths


def file_fingerprint(outcome):
    return (
        outcome.path,
        outcome.status,
        outcome.constants_report,
        outcome.total_pairs,
        outcome.substituted,
        dict(outcome.per_procedure),
    )


def test_threads_really_overlap(files):
    """With a 200ms per-file delay fault armed, two thread workers must
    have at least two files in flight at once — the old global
    worker-state lock serialized them."""
    concurrent = {"now": 0, "peak": 0}
    gate = threading.Lock()
    original = batch.analyze_one

    def tracked(path, *args, **kwargs):
        with gate:
            concurrent["now"] += 1
            concurrent["peak"] = max(concurrent["peak"], concurrent["now"])
        try:
            return original(path, *args, **kwargs)
        finally:
            with gate:
                concurrent["now"] -= 1

    faults.install("delay-file:ms=200", export_env=False)
    batch.analyze_one = tracked
    start = time.perf_counter()
    try:
        result = batch.run_batch(
            files, AnalysisConfig(), jobs=2, executor="thread"
        )
    finally:
        batch.analyze_one = original
        faults.clear()
    wall = time.perf_counter() - start

    assert result.ok
    assert concurrent["peak"] >= 2, (
        "thread executor never had two files in flight — still serialized"
    )
    # 4 files x 200ms of injected sleep is 800ms of delay; two workers
    # overlap it into ~400ms. Well under the serial floor proves the
    # sleeps (and the analyses around them) actually overlapped.
    assert wall < 0.8, (
        f"batch of 4 delayed files took {wall:.2f}s with 2 threads — "
        f"no overlap"
    )


def test_thread_output_byte_identical_to_inline(files):
    inline = batch.run_batch(files, AnalysisConfig(), jobs=1)
    threaded = batch.run_batch(
        files, AnalysisConfig(), jobs=2, executor="thread"
    )
    assert [file_fingerprint(o) for o in threaded.files] == [
        file_fingerprint(o) for o in inline.files
    ]
    assert threaded.totals()["by_status"] == inline.totals()["by_status"]


def test_thread_scoped_metrics_isolate_per_file(files):
    """Overlapping files must each report exactly their own counter
    delta: same numbers the file reports when analyzed alone."""
    faults.install("delay-file:ms=50", export_env=False)
    try:
        threaded = batch.run_batch(
            files, AnalysisConfig(), jobs=2, executor="thread",
            want_metrics=True,
        )
    finally:
        faults.clear()
    alone = {
        path: batch.analyze_one(
            path, AnalysisConfig(), want_metrics=True
        )
        for path in files
    }
    for outcome in threaded.files:
        expected = alone[outcome.path].metrics["counters"]
        observed = outcome.metrics["counters"]
        # Interpreter-level memo counters depend on process history;
        # the analysis counters must match exactly.
        keys = {
            k for k in set(expected) | set(observed)
            if not k.startswith("memo_")
        }
        for key in sorted(keys):
            assert observed.get(key, 0) == expected.get(key, 0), (
                f"{outcome.path}: counter {key} diverged under overlap"
            )


def test_thread_profiles_attach_per_file(files):
    threaded = batch.run_batch(
        files, AnalysisConfig(), jobs=2, executor="thread",
        want_profile=True,
    )
    assert threaded.ok
    for outcome in threaded.files:
        assert outcome.profile is not None
        assert outcome.profile["counters"].get("parses", 0) >= 1
