"""Parse/analysis memoization: hit counters, LRU eviction, and the
oracle-trial redundancy bound the memo layer was built to enforce."""

from repro import profiling
from repro.config import AnalysisConfig
from repro.engine import memo

PROGRAM = "      PROGRAM MAIN\n      X = 1\n      END\n"


def make_program(index):
    return f"      PROGRAM MAIN\n      X = {index}\n      END\n"


class TestParseMemo:
    def test_repeat_parse_hits(self):
        memo.clear_memos()
        profiling.reset_counters()
        first = memo.parsed_module(PROGRAM, "a.f")
        second = memo.parsed_module(PROGRAM, "a.f")
        assert second is first
        assert profiling.counter("parses") == 1
        assert profiling.counter("parse_memo_hits") == 1

    def test_filename_is_part_of_the_key(self):
        memo.clear_memos()
        profiling.reset_counters()
        memo.parsed_module(PROGRAM, "a.f")
        memo.parsed_module(PROGRAM, "b.f")
        assert profiling.counter("parses") == 2

    def test_fresh_program_lowers_each_call(self):
        memo.clear_memos()
        profiling.reset_counters()
        one = memo.fresh_program(PROGRAM, "a.f")
        two = memo.fresh_program(PROGRAM, "a.f")
        assert one is not two  # distinct lowered programs...
        assert profiling.counter("parses") == 1  # ...from one parse
        assert profiling.counter("lowerings") == 2

    def test_lru_eviction(self):
        memo.clear_memos()
        profiling.reset_counters()
        for index in range(memo._PARSE_CAPACITY + 1):
            memo.parsed_module(make_program(index), "a.f")
        assert len(memo._parse_memo) == memo._PARSE_CAPACITY
        # Entry 0 was the least recently used, so it was evicted.
        memo.parsed_module(make_program(0), "a.f")
        assert profiling.counter("parse_memo_hits") == 0


class TestAnalysisMemo:
    def test_repeat_analysis_hits(self):
        memo.clear_memos()
        profiling.reset_counters()
        first = memo.memoized_analysis(PROGRAM, AnalysisConfig(), "a.f")
        second = memo.memoized_analysis(PROGRAM, AnalysisConfig(), "a.f")
        assert second is first
        assert profiling.counter("analysis_memo_hits") == 1
        assert profiling.counter("lowerings") == 1

    def test_config_is_part_of_the_key(self):
        from dataclasses import replace

        memo.clear_memos()
        profiling.reset_counters()
        memo.memoized_analysis(PROGRAM, AnalysisConfig(), "a.f")
        memo.memoized_analysis(
            PROGRAM, replace(AnalysisConfig(), use_mod=False), "a.f"
        )
        assert profiling.counter("analysis_memo_hits") == 0
        assert profiling.counter("lowerings") == 2

    def test_clear_memos(self):
        memo.clear_memos()
        profiling.reset_counters()
        memo.memoized_analysis(PROGRAM, AnalysisConfig(), "a.f")
        memo.clear_memos()
        memo.memoized_analysis(PROGRAM, AnalysisConfig(), "a.f")
        assert profiling.counter("analysis_memo_hits") == 0


RUN_PROGRAM = """\
      PROGRAM MAIN
      INTEGER X
      X = 2
      X = X + 3
      PRINT *, X
      END
"""


class TestInterpMemo:
    def test_repeat_execution_hits(self):
        memo.clear_memos()
        profiling.reset_counters()
        first = memo.memoized_run(RUN_PROGRAM, (), 1000, "a.f")
        second = memo.memoized_run(RUN_PROGRAM, (), 1000, "a.f")
        assert second is first
        assert first.output == ["5"]
        assert profiling.counter("interp_memo_hits") == 1

    def test_larger_fuel_still_hits(self):
        """A recorded trace satisfies any budget covering its steps."""
        memo.clear_memos()
        profiling.reset_counters()
        trace = memo.memoized_run(RUN_PROGRAM, (), 1000, "a.f")
        again = memo.memoized_run(RUN_PROGRAM, (), trace.steps, "a.f")
        assert again is trace
        assert profiling.counter("interp_memo_hits") == 1

    def test_smaller_fuel_reruns_and_exhausts(self):
        """A budget below the recorded cost must raise exactly as a
        live run would — the memo never masks fuel exhaustion."""
        import pytest

        from repro.ir.interp import InterpreterError

        memo.clear_memos()
        profiling.reset_counters()
        trace = memo.memoized_run(RUN_PROGRAM, (), 1000, "a.f")
        with pytest.raises(InterpreterError):
            memo.memoized_run(RUN_PROGRAM, (), trace.steps - 1, "a.f")
        assert profiling.counter("interp_memo_hits") == 0

    def test_inputs_are_part_of_the_key(self):
        program = (
            "      PROGRAM MAIN\n"
            "      INTEGER X\n"
            "      READ *, X\n"
            "      PRINT *, X\n"
            "      END\n"
        )
        memo.clear_memos()
        profiling.reset_counters()
        one = memo.memoized_run(program, (1,), 1000, "a.f")
        two = memo.memoized_run(program, (2,), 1000, "a.f")
        assert one.output == ["1"] and two.output == ["2"]
        assert profiling.counter("interp_memo_hits") == 0

    def test_oracle_campaign_reexecution_hits(self):
        """Two identical trials: the second serves every execution from
        the memo — the CI oracle job gates on this counter being > 0.
        Asserted through the metrics registry (a snapshot delta), so it
        also proves the memo's bumps land in the registry that
        ``--metrics`` exports."""
        from repro.obs import metrics
        from repro.oracle.harness import run_trial

        memo.clear_memos()
        base = metrics.snapshot()
        assert not run_trial(11).discrepancies
        assert not run_trial(11).discrepancies
        delta = metrics.delta_since(base)["counters"]
        assert delta.get("interp_memo_hits", 0) > 0
        assert metrics.value("interp_memo_hits") >= delta["interp_memo_hits"]


class TestOracleTrialRedundancy:
    def test_one_trial_lowers_each_variant_at_most_once(self):
        """One differential-oracle trial cross-checks several properties
        over the same generated program.  Before memoization each
        property re-parsed and re-analyzed the program from scratch;
        now each distinct (source, config) variant is analyzed exactly
        once and re-checks hit the memo instead."""
        from repro.oracle.harness import run_trial

        memo.clear_memos()
        profiling.reset_counters()
        result = run_trial(7)
        assert not result.discrepancies

        parses = profiling.counter("parses")
        lowerings = profiling.counter("lowerings")
        # Two texts ever hit the parser: the generated program and its
        # transformed output (checked for idempotence/executability).
        assert parses == 2
        # Each needed (source, config) variant lowers at most once; the
        # trial touches at most 7 variants of the two texts.
        assert lowerings <= 7
        assert profiling.counter("parse_memo_hits") >= 1
        assert profiling.counter("analysis_memo_hits") >= 1
