"""Incremental re-analysis: dirty-set computation and the
byte-identity property.

The property test is the PR's load-bearing check: across ≥50 seeded
edit scripts (literal mutations, call insertions, call deletions — the
latter two change the call-graph shape), an incremental warm run after
editing one procedure must (a) recompute only that procedure's SCC and
its transitive callers, asserted via the engine's recomputed-procedure
tracking, and (b) produce output byte-identical to a cold full run of
the edited program.
"""

from __future__ import annotations

import re
import random

import pytest

from repro.config import AnalysisConfig
from repro.engine import Engine
from repro.engine.incremental import (
    InvalidationReport,
    diff_manifest,
    format_invalidation,
    manifest_key,
)
from repro.ipcp.driver import analyze_file
from repro.ir.printer import format_program
from repro.suite.generator import GeneratorConfig, generate_program

GEN_CONFIG = GeneratorConfig(procedures=5)


# -- seeded edit scripts -----------------------------------------------------


def split_units(source: str):
    """The program's blank-line-separated units, with their names."""
    units = source.strip("\n").split("\n\n")
    named = []
    for unit in units:
        header = unit.lstrip().splitlines()[0]
        match = re.search(r"(?:PROGRAM|SUBROUTINE|FUNCTION)\s+(\w+)", header)
        named.append((match.group(1).lower(), unit))
    return named


def join_units(named) -> str:
    return "\n\n".join(unit for _, unit in named) + "\n"


def _mutate_literal(named, rng):
    """Change one `VAR = <int>` literal somewhere; body-only edit."""
    candidates = [
        (index, match)
        for index, (_, unit) in enumerate(named)
        for match in re.finditer(r"(?m)= (-?\d+)$", unit)
    ]
    if not candidates:
        return None
    index, match = rng.choice(candidates)
    name, unit = named[index]
    old = int(match.group(1))
    replacement = f"= {old + rng.randint(1, 9)}"
    unit = unit[: match.start()] + replacement + unit[match.end():]
    named[index] = (name, unit)
    return name


def _insert_call(named, rng):
    """Insert a zero-arg CALL before a unit's final statement; adds a
    call edge (and possibly a cycle), changing the call-graph shape."""
    zero_arg = [
        name
        for name, unit in named
        if re.search(r"SUBROUTINE\s+\w+\s*$", unit.lstrip().splitlines()[0])
    ]
    if not zero_arg:
        return None
    callee = rng.choice(zero_arg)
    index = rng.randrange(len(named))
    name, unit = named[index]
    lines = unit.splitlines()
    tail = 1 if not lines[-2].strip() == "RETURN" else 2
    lines.insert(len(lines) - tail, f"      CALL {callee.upper()}")
    named[index] = (name, "\n".join(lines))
    return name


def _delete_call(named, rng):
    """Delete one zero-arg CALL statement; removes a call edge."""
    candidates = [
        (index, line_no)
        for index, (_, unit) in enumerate(named)
        for line_no, line in enumerate(unit.splitlines())
        if re.fullmatch(r"\s+CALL \w+", line)
    ]
    if not candidates:
        return None
    index, line_no = rng.choice(candidates)
    name, unit = named[index]
    lines = unit.splitlines()
    del lines[line_no]
    named[index] = (name, "\n".join(lines))
    return name


EDITS = (_mutate_literal, _insert_call, _delete_call)


def apply_edit(source: str, seed: int):
    """One seeded edit; returns (new_source, edited_unit_name). Each
    seed prefers a different edit kind and falls back to the others
    (some edits have no applicable site, and a deletion can leave an
    unparsable empty block), so every seed yields one valid edit."""
    from repro.frontend.errors import FrontendError
    from repro.frontend.parser import parse_source

    rng = random.Random(seed)
    for offset in range(len(EDITS)):
        edit = EDITS[(seed + offset) % len(EDITS)]
        named = split_units(source)
        edited = edit(named, rng)
        if edited is None:
            continue
        candidate = join_units(named)
        try:
            parse_source(candidate, "prog.f")
        except FrontendError:
            continue
        return candidate, edited
    raise AssertionError(f"no edit applied for seed {seed}")


# -- rendering / graph helpers -----------------------------------------------


def render(result) -> str:
    """Every externally visible output, concatenated — what
    "byte-identical" quantifies over."""
    report = result.substitution
    return "\n".join(
        [
            result.constants.format_report(),
            str(result.substituted_constants),
            repr(sorted(report.per_procedure.items())),
            result.transformed_source(),
            format_program(result.program),
        ]
    )


def callers_closure(callgraph, name: str):
    """``name`` plus its transitive callers (the allowed dirty set)."""
    by_name = {p.name: p for p in callgraph.nodes()}
    allowed = {name}
    work = [by_name[name]]
    while work:
        current = work.pop()
        for caller in callgraph.callers(current):
            if caller.name not in allowed:
                allowed.add(caller.name)
                work.append(caller)
    return allowed


# -- the property test -------------------------------------------------------


@pytest.mark.parametrize("seed", range(54))
def test_incremental_matches_cold_and_touches_only_dirty_set(seed, tmp_path):
    source = generate_program(seed, GEN_CONFIG)
    edited_source, edited_name = apply_edit(source, seed)
    assert edited_source != source
    config = AnalysisConfig()
    path = tmp_path / "prog.f"
    cache_dir = tmp_path / "cache"

    # Populate the cache and the manifest with the original program.
    path.write_text(source)
    with Engine(cache_dir=str(cache_dir)) as engine:
        analyze_file(str(path), config, engine=engine)
        first = engine.finish_incremental(str(path))
        assert first.cold

    # Incremental warm run of the edited program.
    path.write_text(edited_source)
    with Engine(cache_dir=str(cache_dir)) as engine:
        warm = analyze_file(str(path), config, engine=engine)
        report = engine.finish_incremental(str(path))
        recomputed_ret = set(engine.recomputed["ret"])
        recomputed_fwd = set(engine.recomputed["fwd"])

    # Cold full run of the edited program, no engine at all.
    cold = analyze_file(str(path), config)

    assert render(warm) == render(cold)

    assert not report.cold and not report.replayed
    dirty = set(report.dirty)
    assert edited_name in dirty
    allowed = callers_closure(warm.callgraph, edited_name)
    assert dirty <= allowed, (seed, dirty, allowed)
    # The engine recomputed exactly the dirty set, nothing else.
    assert recomputed_ret == dirty, (seed, recomputed_ret, dirty)
    assert recomputed_fwd == dirty, (seed, recomputed_fwd, dirty)
    assert set(report.clean).isdisjoint(recomputed_ret | recomputed_fwd)
    assert set(report.clean) | dirty == {p.name for p in warm.program}


def test_clean_rerun_recomputes_nothing(tmp_path):
    source = generate_program(3, GEN_CONFIG)
    path = tmp_path / "prog.f"
    path.write_text(source)
    config = AnalysisConfig()
    with Engine(cache_dir=str(tmp_path / "cache")) as engine:
        analyze_file(str(path), config, engine=engine)
        engine.finish_incremental(str(path))
    with Engine(cache_dir=str(tmp_path / "cache")) as engine:
        analyze_file(str(path), config, engine=engine)
        report = engine.finish_incremental(str(path))
        assert engine.recomputed["ret"] == []
        assert engine.recomputed["fwd"] == []
    assert report.dirty == []
    assert set(report.clean) == {name for name, _ in split_units(source)}


# -- unit tests for the diff/report layer ------------------------------------


class TestDiffManifest:
    def _index(self, entries):
        return {
            name: {"digest": digest, "key": key}
            for name, (digest, key) in entries.items()
        }

    class _FakeGraph:
        def __init__(self, edges):
            class Node:
                def __init__(self, name):
                    self.name = name

            self._nodes = {
                name: Node(name)
                for name in set(edges) | {c for cs in edges.values() for c in cs}
            }
            self._edges = edges

        def nodes(self):
            return list(self._nodes.values())

        def callees(self, node):
            return [
                self._nodes[name] for name in self._edges.get(node.name, [])
            ]

    def test_cold_when_no_previous_manifest(self):
        index = self._index({"main": ("d1", "k1")})
        report = diff_manifest("a.f", None, index, self._FakeGraph({}))
        assert report.cold
        assert report.dirty == ["main"]
        assert "cold run" in report.format()

    def test_classification(self):
        old = {
            "procedures": self._index(
                {
                    "main": ("dm", "km"),
                    "p": ("dp", "kp"),
                    "q": ("dq", "kq"),
                    "gone": ("dg", "kg"),
                }
            )
        }
        new = self._index(
            {
                "main": ("dm", "km2"),  # downstream: key moved, digest same
                "p": ("dp2", "kp2"),  # edited: digest moved
                "q": ("dq", "kq"),  # clean
                "new": ("dn", "kn"),  # added
            }
        )
        graph = self._FakeGraph({"main": ["p", "q"], "p": [], "q": []})
        report = diff_manifest("a.f", old, new, graph)
        assert report.edited == ["p"]
        assert report.downstream == ["main"]
        assert report.added == ["new"]
        assert report.removed == ["gone"]
        assert report.clean == ["q"]
        assert report.reasons["main"] == "calls dirty procedure(s): p"
        text = report.format()
        assert "3/4 procedure(s) dirty" in text
        assert "removed     gone" in text

    def test_format_replayed_and_roundtrip(self):
        report = InvalidationReport(path="a.f", replayed=True)
        assert "replayed" in report.format()
        assert format_invalidation(report.to_dict()) == report.format()

    def test_manifest_key_normalizes_path(self, tmp_path):
        import os

        config = AnalysisConfig()
        relative = os.path.relpath(str(tmp_path / "x.f"))
        assert manifest_key(relative, config) == manifest_key(
            str(tmp_path / "x.f"), config
        )
        assert manifest_key("a.f", config) != manifest_key("b.f", config)
