"""Parallel determinism: engine output must be byte-identical to the
serial pipeline — same CONSTANTS report, same substitution counts, same
transformed source, same demotion log — for every executor flavor."""

from dataclasses import replace

import pytest

from repro.config import AnalysisBudget, AnalysisConfig
from repro.engine import Engine
from repro.ipcp.driver import analyze_source
from repro.suite.generator import GeneratorConfig, generate_case
from repro.suite.programs import SUITE_PROGRAM_NAMES, program_source

GENERATOR = GeneratorConfig(procedures=6, max_statements_per_procedure=8)
SEEDS = range(25)


def fingerprint_run(text, config=None, engine=None):
    result = analyze_source(text, config or AnalysisConfig(), engine=engine)
    return (
        result.constants.format_report(),
        dict(result.substitution.per_procedure),
        result.transformed_source(),
        [
            (d.component, d.site, d.from_kind, d.to_kind, d.reason)
            for d in result.resilience.demotions
        ],
    )


class TestThreadPoolDeterminism:
    def test_generated_programs_25_seeds(self):
        for seed in SEEDS:
            text = generate_case(seed, GENERATOR).source
            serial = fingerprint_run(text)
            with Engine(jobs=4, executor="thread") as engine:
                parallel = fingerprint_run(text, engine=engine)
            assert parallel == serial, f"seed {seed} diverged"

    @pytest.mark.parametrize("name", SUITE_PROGRAM_NAMES)
    def test_suite_programs(self, name):
        text = program_source(name)
        serial = fingerprint_run(text)
        with Engine(jobs=4, executor="thread") as engine:
            assert fingerprint_run(text, engine=engine) == serial

    def test_demotion_log_parity_under_tight_budget(self):
        config = replace(AnalysisConfig(), budget=AnalysisBudget.tight())
        generator = GeneratorConfig(
            procedures=10, max_statements_per_procedure=12
        )
        for seed in range(5):
            text = generate_case(seed, generator).source
            serial = fingerprint_run(text, config)
            assert serial[3], "tight budget should demote something"
            with Engine(jobs=4, executor="thread") as engine:
                assert fingerprint_run(text, config, engine=engine) == serial


class TestProcessPoolDeterminism:
    """Fork workers rebuild nothing (copy-on-write inheritance); spawn
    fallbacks re-lower from source. Either way the merge is driven by
    identity-free payloads, so outputs are byte-identical. Kept small:
    pool startup dominates on a 1-CPU container."""

    def test_suite_program(self):
        text = program_source("adm")
        serial = fingerprint_run(text)
        with Engine(jobs=2, executor="process") as engine:
            assert fingerprint_run(text, engine=engine) == serial

    def test_generated_programs_two_seeds(self):
        for seed in (3, 11):
            text = generate_case(seed, GENERATOR).source
            serial = fingerprint_run(text)
            with Engine(jobs=2, executor="process") as engine:
                assert fingerprint_run(text, engine=engine) == serial


class TestEngineReuse:
    def test_one_engine_many_programs(self):
        with Engine(jobs=2, executor="thread") as engine:
            for name in ("adm", "linpackd"):
                text = program_source(name)
                assert fingerprint_run(text, engine=engine) == (
                    fingerprint_run(text)
                )

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            Engine(jobs=0)

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError):
            Engine(executor="fibers")


class TestCacheParallelInteraction:
    def test_warm_parallel_matches_cold_serial(self, tmp_path):
        text = program_source("adm")
        serial = fingerprint_run(text)
        with Engine(jobs=4, executor="thread",
                    cache_dir=str(tmp_path)) as engine:
            assert fingerprint_run(text, engine=engine) == serial
        with Engine(jobs=4, executor="thread",
                    cache_dir=str(tmp_path)) as engine:
            assert fingerprint_run(text, engine=engine) == serial
            assert engine.cache.stats.misses == 0
