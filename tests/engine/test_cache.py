"""Persistent summary cache: warm hits, invalidation, versioning."""

import json
import os
from dataclasses import replace

import pytest

from repro.config import AnalysisConfig
from repro.engine import Engine, SummaryCache, default_cache_root, fingerprint
from repro.engine.cache import CacheStats
from repro.ipcp.driver import analyze_source
from repro.suite.programs import program_source

SOURCE = program_source("adm")


def run(config=None, engine=None, text=SOURCE):
    return analyze_source(text, config or AnalysisConfig(), engine=engine)


def outputs(result):
    return (
        result.constants.format_report(),
        result.substitution.per_procedure,
        result.transformed_source(),
    )


class TestSummaryCacheStore:
    def test_get_put_roundtrip(self, tmp_path):
        cache = SummaryCache(str(tmp_path))
        assert cache.get("ret", "ab" * 32) is None
        cache.put("ret", "ab" * 32, {"fns": [1, 2]})
        assert cache.get("ret", "ab" * 32) == {"fns": [1, 2]}
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert cache.stats.stores == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = SummaryCache(str(tmp_path))
        key = "cd" * 32
        cache.put("fwd", key, {"x": 1})
        path = cache._path("fwd", key)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{not json")
        assert cache.get("fwd", key) is None

    def test_namespaces_are_disjoint(self, tmp_path):
        cache = SummaryCache(str(tmp_path))
        key = "ef" * 32
        cache.put("ret", key, {"a": 1})
        assert cache.get("fwd", key) is None

    def test_hit_rate(self):
        stats = CacheStats(hits=3, misses=1)
        assert stats.hit_rate == 0.75
        assert CacheStats().hit_rate == 0.0

    def test_default_root_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", "/somewhere/else")
        assert default_cache_root() == "/somewhere/else"
        monkeypatch.delenv("REPRO_CACHE_DIR")
        monkeypatch.setenv("XDG_CACHE_HOME", "/xdg")
        assert default_cache_root() == os.path.join("/xdg", "repro")


class TestWarmRuns:
    def test_warm_run_hits_everything_and_matches(self, tmp_path):
        serial = outputs(run())
        with Engine(cache_dir=str(tmp_path)) as engine:
            cold = outputs(run(engine=engine))
            assert engine.cache.stats.hits == 0
            stores = engine.cache.stats.stores
            assert stores > 0
        with Engine(cache_dir=str(tmp_path)) as engine:
            warm = outputs(run(engine=engine))
            stats = engine.cache.stats
            assert stats.misses == 0
            assert stats.hit_rate >= 0.95
        assert cold == serial
        assert warm == serial

    def test_whitespace_edit_keeps_summaries(self, tmp_path):
        with Engine(cache_dir=str(tmp_path)) as engine:
            run(engine=engine)
        with Engine(cache_dir=str(tmp_path)) as engine:
            run(engine=engine, text=SOURCE + "\n")
            # Raw text changed but no procedure's IR did: the Merkle
            # keys hash analysis-relevant content, not bytes.
            assert engine.cache.stats.misses == 0


class TestInvalidation:
    def test_source_edit_invalidates_edited_and_callers_only(self, tmp_path):
        edited = SOURCE.replace("= 2", "= 3", 1)
        assert edited != SOURCE
        with Engine(cache_dir=str(tmp_path)) as engine:
            run(engine=engine)
        with Engine(cache_dir=str(tmp_path)) as engine:
            result = run(engine=engine, text=edited)
            stats = engine.cache.stats
            assert stats.misses > 0, "the edit must invalidate something"
            assert stats.hits > 0, "unrelated procedures must stay cached"
        assert outputs(result) == outputs(run(text=edited))

    def test_config_change_invalidates_all(self, tmp_path):
        with Engine(cache_dir=str(tmp_path)) as engine:
            run(engine=engine)
        other = replace(AnalysisConfig(), use_mod=False)
        with Engine(cache_dir=str(tmp_path)) as engine:
            run(config=other, engine=engine)
            assert engine.cache.stats.hits == 0

    def test_cache_version_bump_invalidates_all(self, tmp_path, monkeypatch):
        with Engine(cache_dir=str(tmp_path)) as engine:
            run(engine=engine)
        monkeypatch.setattr(
            fingerprint, "ENGINE_CACHE_VERSION",
            fingerprint.ENGINE_CACHE_VERSION + 1,
        )
        with Engine(cache_dir=str(tmp_path)) as engine:
            run(engine=engine)
            assert engine.cache.stats.hits == 0

    def test_fingerprint_excludes_verify_ir(self):
        base = AnalysisConfig()
        assert fingerprint.config_fingerprint(base) == (
            fingerprint.config_fingerprint(replace(base, verify_ir=True))
        )
        assert fingerprint.config_fingerprint(base) != (
            fingerprint.config_fingerprint(replace(base, use_mod=False))
        )


class TestRunCache:
    def test_clean_run_recorded_and_replayed(self, tmp_path):
        config = AnalysisConfig()
        with Engine(cache_dir=str(tmp_path)) as engine:
            assert engine.cached_run(SOURCE, config) is None
            result = run(config, engine=engine)
            engine.record_run(SOURCE, config, result)
            payload = engine.cached_run(SOURCE, config)
        assert payload is not None
        assert payload["constants_report"] == result.constants.format_report()
        assert payload["substituted"] == result.substitution.total
        assert payload["transformed_source"] == result.transformed_source()

    def test_degraded_run_never_recorded(self, tmp_path):
        from repro.config import AnalysisBudget

        config = replace(AnalysisConfig(), budget=AnalysisBudget.tight())
        with Engine(cache_dir=str(tmp_path)) as engine:
            result = run(config, engine=engine)
            assert result.resilience.demotions, "tight budget must demote"
            engine.record_run(SOURCE, config, result)
            assert engine.cached_run(SOURCE, config) is None
