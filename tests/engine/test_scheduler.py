"""SCC condensation levels and the reverse-postorder walk."""

from repro.callgraph.callgraph import build_call_graph
from repro.engine.scheduler import condensation_levels, partition
from repro.ipcp.driver import prepare_program
from repro.config import AnalysisConfig

from tests.conftest import lower

DIAMOND = (
    "      PROGRAM MAIN\n      CALL L(1)\n      CALL R(2)\n      END\n"
    "      SUBROUTINE L(X)\n      CALL B(X)\n      END\n"
    "      SUBROUTINE R(X)\n      CALL B(X)\n      END\n"
    "      SUBROUTINE B(X)\n      Y = X\n      END\n"
)

MUTUAL = (
    "      PROGRAM MAIN\n      CALL A(5)\n      END\n"
    "      SUBROUTINE A(N)\n"
    "      IF (N .GT. 0) THEN\n      CALL B(N - 1)\n      ENDIF\n      END\n"
    "      SUBROUTINE B(N)\n"
    "      IF (N .GT. 0) THEN\n      CALL A(N - 1)\n      ENDIF\n      END\n"
)


def graph_of(text):
    program = lower(text)
    return program, build_call_graph(program)


def flatten(levels):
    return [p.name for level in levels for scc in level for p in scc]


class TestCondensationLevels:
    def test_partitions_every_procedure_once(self):
        program, callgraph = graph_of(DIAMOND)
        names = flatten(condensation_levels(callgraph))
        assert sorted(names) == sorted(p.name for p in program)

    def test_callees_on_strictly_lower_levels(self):
        _, callgraph = graph_of(DIAMOND)
        levels = condensation_levels(callgraph)
        level_of = {}
        for depth, level in enumerate(levels):
            for scc in level:
                for proc in scc:
                    level_of[proc] = depth
        for depth, level in enumerate(levels):
            for scc in level:
                members = set(scc)
                for proc in scc:
                    for callee in callgraph.callees(proc):
                        if callee not in members:
                            assert level_of[callee] < depth

    def test_diamond_shape(self):
        _, callgraph = graph_of(DIAMOND)
        levels = condensation_levels(callgraph)
        assert [sorted(p.name for scc in level for p in scc)
                for level in levels] == [["b"], ["l", "r"], ["main"]]

    def test_mutual_recursion_is_one_component(self):
        _, callgraph = graph_of(MUTUAL)
        levels = condensation_levels(callgraph)
        sizes = sorted(len(scc) for level in levels for scc in level)
        assert sizes == [1, 2]  # {a,b} together, main alone

    def test_same_level_components_never_call_each_other(self):
        _, callgraph = graph_of(DIAMOND)
        for level in condensation_levels(callgraph):
            for scc in level:
                for other in level:
                    if scc is other:
                        continue
                    others = set(other)
                    for proc in scc:
                        assert not (set(callgraph.callees(proc)) & others)


class TestReversePostorder:
    def test_covers_all_and_starts_at_main(self):
        program, callgraph = graph_of(DIAMOND)
        order = callgraph.reverse_postorder()
        assert order[0].is_main
        assert sorted(p.name for p in order) == sorted(p.name for p in program)

    def test_callers_precede_callees_on_dag(self):
        _, callgraph = graph_of(DIAMOND)
        order = callgraph.reverse_postorder()
        rank = {p: i for i, p in enumerate(order)}
        for proc in order:
            for callee in callgraph.callees(proc):
                if callee is not proc:
                    assert rank[callee] > rank[proc]

    def test_includes_unreached_procedures(self):
        program, callgraph = graph_of(
            "      PROGRAM MAIN\n      X = 1\n      END\n"
            "      SUBROUTINE ORPHAN(K)\n      Y = K\n      END\n"
        )
        order = callgraph.reverse_postorder()
        assert sorted(p.name for p in order) == sorted(p.name for p in program)


class TestPartition:
    def test_empty(self):
        assert partition([], 4) == []

    def test_fewer_items_than_chunks(self):
        assert partition([1, 2], 8) == [[1], [2]]

    def test_order_preserving_and_complete(self):
        items = list(range(11))
        chunks = partition(items, 3)
        assert [x for chunk in chunks for x in chunk] == items
        assert len(chunks) == 3
        assert max(len(c) for c in chunks) - min(len(c) for c in chunks) <= 1
