"""Engine vs serial parity over the entire golden regression corpus.

The golden corpus pins the analyses' observable outputs; here we assert
the engine (threaded, jobs=4) reproduces those outputs byte-for-byte on
every corpus member under that member's own configuration.
"""

import pytest

from repro.engine import Engine
from repro.ipcp.driver import analyze_source
from repro.oracle.golden import golden_programs

CORPUS = golden_programs()


def fingerprint(result):
    return (
        result.constants.format_report(),
        dict(result.substitution.per_procedure),
        result.transformed_source(),
        [
            (d.component, d.site, d.from_kind, d.to_kind, d.reason)
            for d in result.resilience.demotions
        ],
    )


@pytest.mark.parametrize("name", sorted(CORPUS))
def test_engine_matches_serial(name):
    member = CORPUS[name]
    serial = fingerprint(analyze_source(member.source, member.config))
    with Engine(jobs=4, executor="thread") as engine:
        parallel = fingerprint(
            analyze_source(member.source, member.config, engine=engine)
        )
    assert parallel == serial
