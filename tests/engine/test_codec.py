"""The arena wire codec: decode(encode(x)) == x over the JSON data
model, exactly — type distinctions included — and everything outside
that domain is refused loudly at encode time."""

from __future__ import annotations

import json
import math

import pytest

from repro.engine import codec
from repro.engine.codec import CodecError, decode_value, encode_value

ROUNDTRIP_VALUES = [
    None,
    True,
    False,
    0,
    1,
    -1,
    63,
    64,
    -64,
    -65,
    2**31 - 1,
    -(2**31),
    2**200,          # polynomial coefficients are unbounded
    -(2**200),
    0.0,
    -0.0,
    1.5,
    -2.25e300,
    "",
    "x",
    "naïve Σ ümlaut",
    [],
    [1, 2, 3],
    [None, True, 0, "mixed", [1.5]],
    {},
    {"a": 1},
    {"ret": {"kind": "poly", "coeffs": [1, -2, 3]}, "": None},
]


class TestRoundtrip:
    @pytest.mark.parametrize("value", ROUNDTRIP_VALUES)
    def test_exact(self, value):
        again = decode_value(encode_value(value))
        assert again == value
        assert type(again) is type(value)

    def test_bool_int_distinction_survives(self):
        # JSON would conflate these after a load/dump cycle; the codec
        # must not — summary merges compare types.
        payload = [True, 1, False, 0]
        again = decode_value(encode_value(payload))
        assert [type(v) for v in again] == [bool, int, bool, int]

    def test_nested_summary_shaped_payload(self):
        payload = {
            "name": "p12",
            "cells": [["c", 7], ["t"], ["b"]],
            "sites": [[0, "callee", [1, 2]], [3, "other", []]],
            "weight": -1.25,
        }
        assert decode_value(encode_value(payload)) == payload

    def test_key_order_is_preserved(self):
        payload = {"z": 1, "a": 2, "m": 3}
        assert list(decode_value(encode_value(payload))) == ["z", "a", "m"]

    def test_nan_roundtrips(self):
        value = decode_value(encode_value(float("nan")))
        assert math.isnan(value)

    def test_compact_vs_json(self):
        payload = {"kind": "poly", "coeffs": [0, -1, 250, 3]}
        wire = encode_value(payload)
        assert len(wire) < len(json.dumps(payload).encode())


class TestEncodeDomain:
    @pytest.mark.parametrize(
        "value",
        [(1, 2), {"k": (1,)}, {1: "non-str key"}, b"bytes", {"k": set()}],
    )
    def test_out_of_domain_values_refused(self, value):
        with pytest.raises(CodecError):
            encode_value(value)

    def test_codec_error_is_a_value_error(self):
        # Callers that guard with ``except ValueError`` still catch it.
        assert issubclass(CodecError, ValueError)


class TestDecodeRobustness:
    def test_trailing_bytes_rejected(self):
        with pytest.raises(CodecError, match="trailing"):
            decode_value(encode_value(1) + b"\x00")

    def test_empty_input_rejected(self):
        with pytest.raises(CodecError):
            decode_value(b"")

    def test_unknown_tag_rejected(self):
        with pytest.raises(CodecError, match="tag"):
            decode_value(b"\x7f")

    @pytest.mark.parametrize(
        "value", ["hello world", [1, 2, 3], {"key": 1}, 1.5, 2**70]
    )
    def test_every_truncation_detected(self, value):
        wire = encode_value(value)
        for cut in range(len(wire)):
            with pytest.raises(CodecError):
                decode_value(wire[:cut])

    def test_memoryview_input_accepted(self):
        # Arena reads hand over mmap slices.
        wire = memoryview(encode_value({"a": [1, 2]}))
        assert decode_value(wire) == {"a": [1, 2]}


def test_version_constant_present():
    # Stamped into arena headers; a bump must be deliberate, so pin it.
    assert codec.CODEC_VERSION == 1
