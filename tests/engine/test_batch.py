"""Batch driver: scheduling, outcome plumbing, executor parity, the
run-level replay path, and the ``repro batch`` CLI."""

from __future__ import annotations

import io
import json

import pytest

from repro.cli import main
from repro.config import AnalysisConfig
from repro.engine.batch import (
    BatchResult,
    FileOutcome,
    _schedule,
    analyze_one,
    read_stdin_list,
    run_batch,
)

CONSTANT_PROGRAM = """\
      PROGRAM MAIN
      INTEGER X
      X = 3
      CALL P(X)
      PRINT *, X
      END

      SUBROUTINE P(A)
      INTEGER A
      A = A + 1
      END
"""

SMALL_PROGRAM = """\
      PROGRAM MAIN
      INTEGER Y
      Y = 10
      PRINT *, Y
      END
"""


@pytest.fixture()
def programs(tmp_path):
    big = tmp_path / "big.f"
    big.write_text(CONSTANT_PROGRAM)
    small = tmp_path / "small.f"
    small.write_text(SMALL_PROGRAM)
    return big, small


def outcome_fingerprint(outcome: FileOutcome):
    return (
        outcome.status,
        outcome.constants_report,
        outcome.total_pairs,
        outcome.substituted,
        sorted(outcome.per_procedure.items()),
    )


class TestScheduling:
    def test_big_first_with_stable_ties(self, programs):
        big, small = programs
        paths = [str(small), str(big), str(small)]
        assert _schedule(paths) == [str(big), str(small), str(small)]

    def test_missing_files_sort_last(self, programs):
        big, _ = programs
        order = _schedule(["nope.f", str(big)])
        assert order == [str(big), "nope.f"]


class TestRunBatch:
    def test_results_in_input_order(self, programs):
        big, small = programs
        result = run_batch([str(small), str(big)])
        assert [o.path for o in result.files] == [str(small), str(big)]
        assert result.ok
        assert result.outcome(str(big)).total_pairs == 1
        assert result.outcome(str(big)).substituted == 2
        assert result.outcome(str(small)).substituted == 1

    def test_missing_file_is_isolated(self, programs):
        big, _ = programs
        result = run_batch([str(big), "missing.f"])
        assert not result.ok
        assert result.outcome(str(big)).ok
        failed = result.outcome("missing.f")
        assert failed.status == "error"
        assert failed.error is not None
        assert "1 ok" not in (failed.error or "")

    def test_broken_source_reports_not_crashes(self, tmp_path, programs):
        big, _ = programs
        broken = tmp_path / "broken.f"
        broken.write_text("      THIS IS NOT FORTRAN AT ALL(((\n")
        result = run_batch([str(broken), str(big)])
        assert result.outcome(str(big)).ok
        assert not result.outcome(str(broken)).ok

    def test_replay_on_second_pass(self, tmp_path, programs):
        big, small = programs
        cache = str(tmp_path / "cache")
        cold = run_batch([str(big), str(small)], cache_dir=cache)
        assert [o.replayed for o in cold.files] == [False, False]
        warm = run_batch([str(big), str(small)], cache_dir=cache)
        assert [o.replayed for o in warm.files] == [True, True]
        assert warm.totals()["replayed"] == 2
        for before, after in zip(cold.files, warm.files):
            assert outcome_fingerprint(before) == outcome_fingerprint(after)

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_pool_matches_serial(self, programs, tmp_path, executor):
        big, small = programs
        paths = [str(big), str(small), str(big)]
        serial = run_batch(paths, jobs=1)
        pooled = run_batch(paths, jobs=2, executor=executor)
        assert [outcome_fingerprint(o) for o in serial.files] == [
            outcome_fingerprint(o) for o in pooled.files
        ]

    def test_incremental_reports_cross_the_pool(self, tmp_path, programs):
        big, small = programs
        cache = str(tmp_path / "cache")
        run_batch([str(big), str(small)], cache_dir=cache, explain=True)
        (big).write_text(CONSTANT_PROGRAM.replace("A + 1", "A + 2"))
        warm = run_batch(
            [str(big), str(small)],
            jobs=2,
            cache_dir=cache,
            explain=True,
            executor="thread",
        )
        edited = warm.outcome(str(big)).invalidation
        assert edited["edited"] == ["p"]
        assert edited["downstream"] == ["main"]
        assert warm.outcome(str(small)).invalidation["replayed"]

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            run_batch([], jobs=0)
        with pytest.raises(ValueError):
            run_batch([], executor="carrier-pigeon")


class TestProfileAggregation:
    def test_per_file_and_totals(self, programs):
        big, small = programs
        result = run_batch([str(big), str(small)], want_profile=True)
        report = result.profile_report()
        assert set(report["per_file"]) == {str(big), str(small)}
        aggregate = report["aggregate"]
        for payload in report["per_file"].values():
            assert payload["total_seconds"] >= 0
        assert aggregate["counters"]["parses"] == 2
        assert report["files"] == 2

    def test_analyze_one_counts_recomputation(self, tmp_path, programs):
        big, _ = programs
        cache = str(tmp_path / "cache")
        cold = analyze_one(
            str(big), AnalysisConfig(), cache_dir=cache, want_profile=True
        )
        counters = cold.profile["counters"]
        assert counters["recomputed_ret"] == 2
        assert counters["recomputed_fwd"] == 2
        assert counters["incremental_dirty"] == 2
        warm = analyze_one(
            str(big), AnalysisConfig(), cache_dir=cache, want_profile=True
        )
        assert warm.replayed
        assert "recomputed_ret" not in warm.profile["counters"]


class TestStdinList:
    def test_parses_lines_and_comments(self):
        stream = io.StringIO("a.f\n\n# comment\n  b.f  \n")
        assert read_stdin_list(stream) == ["a.f", "b.f"]


class TestBatchCli:
    def test_summary_lines_and_exit_code(self, programs, capsys):
        big, small = programs
        assert main(["batch", str(big), str(small)]) == 0
        out = capsys.readouterr().out
        assert f"{big}: 1 constant(s), 2 substituted" in out
        assert "2 ok" in out

    def test_failure_exit_code(self, programs, capsys):
        big, _ = programs
        assert main(["batch", str(big), "missing.f"]) == 1
        assert "error" in capsys.readouterr().out

    def test_no_inputs(self, capsys):
        assert main(["batch"]) == 1
        assert "no input files" in capsys.readouterr().err

    def test_stdin_list(self, programs, capsys, monkeypatch):
        big, small = programs
        monkeypatch.setattr(
            "sys.stdin", io.StringIO(f"{big}\n{small}\n")
        )
        assert main(["batch", "--stdin-list"]) == 0
        out = capsys.readouterr().out
        assert str(big) in out and str(small) in out

    def test_report_flag_prints_constants(self, programs, capsys):
        big, _ = programs
        assert main(["batch", str(big), "--report"]) == 0
        assert "CONSTANTS" in capsys.readouterr().out

    def test_explain_invalidation_roundtrip(self, tmp_path, programs, capsys):
        big, _ = programs
        cache = str(tmp_path / "cache")
        main(["batch", str(big), "--cache-dir", cache])
        capsys.readouterr()
        big.write_text(CONSTANT_PROGRAM.replace("A + 1", "A + 5"))
        assert (
            main(
                [
                    "batch", str(big), "--cache-dir", cache,
                    "--explain-invalidation", "--jobs", "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "edited      p: post-SSA IR changed" in out
        assert "downstream  main: calls dirty procedure(s): p" in out

    def test_profile_json_written(self, programs, tmp_path, capsys):
        big, small = programs
        destination = tmp_path / "profile.json"
        assert (
            main(
                ["batch", str(big), str(small), "--profile", str(destination)]
            )
            == 0
        )
        payload = json.loads(destination.read_text())
        assert set(payload["per_file"]) == {str(big), str(small)}
        assert payload["aggregate"]["counters"]["parses"] == 2

    def test_config_flags_are_shared(self, programs, capsys):
        big, _ = programs
        assert main(["batch", str(big), "--jump", "literal"]) == 0
        assert main(["batch", str(big), "--intra-only"]) == 0


class TestBatchResultShape:
    def test_totals(self):
        result = BatchResult(
            files=[
                FileOutcome(path="a.f", total_pairs=2, substituted=3),
                FileOutcome(path="b.f", status="error", error="boom"),
                FileOutcome(path="c.f", replayed=True, substituted=1),
            ],
            jobs=4,
        )
        totals = result.totals()
        assert totals == {
            "files": 3,
            "jobs": 4,
            "by_status": {"ok": 2, "error": 1},
            "replayed": 1,
            "total_pairs": 2,
            "substituted": 4,
        }
        assert not result.ok
        with pytest.raises(KeyError):
            result.outcome("nope.f")

    def test_summary_lines(self):
        ok = FileOutcome(path="a.f", total_pairs=1, substituted=2)
        assert ok.summary_line() == "a.f: 1 constant(s), 2 substituted"
        replayed = FileOutcome(path="a.f", replayed=True)
        assert replayed.summary_line().endswith("[replayed]")
        failed = FileOutcome(path="b.f", status="error", error="boom")
        assert failed.summary_line() == "b.f: error: boom"


class TestCounterIsolation:
    """The old driver reset the process-wide counters around every file
    (destroying concurrent state and leaking partial counts into
    per-file profiles); isolation now comes from registry snapshots and
    deltas."""

    def test_per_file_counters_do_not_leak_across_files(self, programs):
        big, small = programs
        result = run_batch(
            [str(big), str(small)], want_profile=True, want_metrics=True
        )
        for outcome in result.files:
            # Each file parses and lowers exactly once — a leak from the
            # other file (or from earlier tests in this process) would
            # inflate these beyond 1.
            assert outcome.metrics["counters"]["parses"] == 1, outcome.path
            assert outcome.metrics["counters"]["lowerings"] == 1
            assert outcome.profile["counters"]["parses"] == 1

    def test_batch_does_not_reset_the_process_registry(self, programs):
        from repro.obs import metrics

        big, small = programs
        metrics.inc("preexisting_work", 5)
        before = metrics.value("parses")
        run_batch([str(big), str(small)], want_metrics=True)
        # Snapshot/delta isolation must leave prior counts intact and
        # let the batch's own work accumulate on top.
        assert metrics.value("preexisting_work") == 5
        assert metrics.value("parses") == before + 2

    def test_merged_metrics_aggregates_per_file_deltas(self, programs):
        big, small = programs
        result = run_batch([str(big), str(small)], want_metrics=True)
        merged = result.merged_metrics()
        assert merged is not None
        assert merged.value("parses") == 2
        assert merged.value("batch_files") == 2
        assert merged.histogram("batch_file_seconds").count == 2

    def test_isolation_holds_across_pool_workers(self, programs):
        # Process workers (the default pool): each worker's registry is
        # its own, so per-file deltas cannot see a sibling's work.
        big, small = programs
        serial = run_batch([str(big), str(small)], want_metrics=True)
        pooled = run_batch(
            [str(big), str(small)], jobs=2, want_metrics=True,
        )
        for lhs, rhs in zip(serial.files, pooled.files):
            assert lhs.metrics["counters"] == rhs.metrics["counters"]

    def test_metrics_not_collected_unless_requested(self, programs):
        big, _ = programs
        result = run_batch([str(big)])
        assert result.files[0].metrics is None
        assert result.merged_metrics() is None
