"""Profiling layer: stage timers, counters, JSON shape."""

import json

from repro import profiling
from repro.profiling import PipelineProfile, maybe_stage


class TestPipelineProfile:
    def test_stage_accumulates_time_and_calls(self):
        profile = PipelineProfile()
        with profile.stage("parse"):
            pass
        with profile.stage("parse"):
            pass
        assert profile.seconds("parse") >= 0.0
        assert profile.to_dict()["stages"]["parse"]["calls"] == 2

    def test_counters(self):
        profile = PipelineProfile()
        profile.count("widgets")
        profile.count("widgets", 4)
        profile.set_counter("gadgets", 7)
        assert profile.counter("widgets") == 5
        assert profile.counter("gadgets") == 7

    def test_merge_counters(self):
        profile = PipelineProfile()
        profile.count("parses", 2)
        profile.merge_counters({"parses": 3, "lowerings": 1})
        assert profile.counter("parses") == 5
        assert profile.counter("lowerings") == 1

    def test_json_round_trips(self):
        profile = PipelineProfile()
        with profile.stage("solve"):
            pass
        profile.count("hits", 3)
        data = json.loads(profile.to_json())
        assert data["counters"]["hits"] == 3
        assert "solve" in data["stages"]
        assert data["total_seconds"] >= 0.0

    def test_format_mentions_stages(self):
        profile = PipelineProfile()
        with profile.stage("substitution"):
            pass
        assert "substitution" in profile.format()

    def test_maybe_stage_none_is_noop(self):
        with maybe_stage(None, "anything"):
            pass  # must not raise

    def test_maybe_stage_records(self):
        profile = PipelineProfile()
        with maybe_stage(profile, "lower"):
            pass
        assert profile.to_dict()["stages"]["lower"]["calls"] == 1


class TestGlobalCounters:
    def test_bump_and_reset(self):
        profiling.reset_counters()
        profiling.bump("parses")
        profiling.bump("parses", 2)
        assert profiling.counter("parses") == 3
        profiling.reset_counters()
        assert profiling.counter("parses") == 0

    def test_frontend_instruments_parse_and_lower(self):
        from tests.conftest import lower

        profiling.reset_counters()
        lower(
            "      PROGRAM MAIN\n      X = 1\n      END\n"
        )
        assert profiling.counter("parses") == 1
        assert profiling.counter("lowerings") == 1
