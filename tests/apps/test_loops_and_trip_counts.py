"""Natural loops, induction variables, and trip-count application tests."""

import pytest

from repro.analysis.loops import analyze_loops
from repro.apps.trip_counts import known_trip_counts
from repro.config import AnalysisConfig
from repro.ipcp.driver import analyze_source, prepare_program
from repro.ipcp.return_functions import ReturnFunctionCallModel

from tests.conftest import lower


def ssa_procedure(text, proc="main"):
    program = lower(text)
    prepare_program(program, AnalysisConfig())
    return program, program.procedure(proc)


class TestNaturalLoops:
    def test_do_loop_found(self):
        _, main = ssa_procedure(
            "      PROGRAM MAIN\n      S = 0\n      DO I = 1, 10\n"
            "      S = S + I\n      ENDDO\n      PRINT *, S\n      END\n"
        )
        loops = analyze_loops(main)
        assert len(loops) == 1
        assert len(loops[0].latches) == 1

    def test_nested_loops_found(self):
        _, main = ssa_procedure(
            "      PROGRAM MAIN\n      DO I = 1, 3\n      DO J = 1, 4\n"
            "      S = S + I * J\n      ENDDO\n      ENDDO\n      END\n"
        )
        loops = analyze_loops(main)
        assert len(loops) == 2
        outer, inner = loops  # sorted largest-first
        assert inner.blocks < outer.blocks

    def test_goto_loop_found(self):
        _, main = ssa_procedure(
            "      PROGRAM MAIN\n      I = 0\n"
            " 10   I = I + 1\n"
            "      IF (I .LT. 5) GOTO 10\n      PRINT *, I\n      END\n"
        )
        loops = analyze_loops(main)
        assert len(loops) == 1

    def test_straightline_has_no_loops(self):
        _, main = ssa_procedure(
            "      PROGRAM MAIN\n      X = 1\n      Y = X\n      END\n"
        )
        assert analyze_loops(main) == []


class TestInductionVariables:
    def test_do_variable_recognized(self):
        _, main = ssa_procedure(
            "      PROGRAM MAIN\n      DO I = 2, 20, 3\n      S = S + I\n"
            "      ENDDO\n      END\n"
        )
        (loop,) = analyze_loops(main)
        ivs = {iv.var.name: iv.step for iv in loop.induction_variables}
        assert ivs["i"] == 3

    def test_negative_step(self):
        _, main = ssa_procedure(
            "      PROGRAM MAIN\n      DO I = 9, 1, -2\n      S = S + I\n"
            "      ENDDO\n      END\n"
        )
        (loop,) = analyze_loops(main)
        ivs = {iv.var.name: iv.step for iv in loop.induction_variables}
        assert ivs["i"] == -2

    def test_hand_written_induction(self):
        _, main = ssa_procedure(
            "      PROGRAM MAIN\n      K = 0\n"
            " 10   K = K + 4\n"
            "      IF (K .LT. 100) GOTO 10\n      END\n"
        )
        (loop,) = analyze_loops(main)
        assert any(iv.step == 4 for iv in loop.induction_variables)

    def test_non_constant_step_not_recognized(self):
        _, main = ssa_procedure(
            "      PROGRAM MAIN\n      READ *, D\n      K = 0\n"
            " 10   K = K + D\n"
            "      IF (K .LT. 100) GOTO 10\n      END\n"
        )
        (loop,) = analyze_loops(main)
        assert not any(
            iv.var.name == "k" for iv in loop.induction_variables
        )


class TestTripCounts:
    PROGRAM = (
        "      PROGRAM MAIN\n      COMMON /C/ N\n      CALL INIT\n"
        "      CALL WORK(25)\n      END\n"
        "      SUBROUTINE INIT\n      COMMON /C/ N\n      N = 40\n      END\n"
        "      SUBROUTINE WORK(M)\n      COMMON /C/ N\n"
        "      DO I = 1, N\n      S = S + I\n      ENDDO\n"
        "      DO J = 1, M, 2\n      T = T + J\n      ENDDO\n"
        "      DO K = 1, L\n      U = U + K\n      ENDDO\n"
        "      END\n"
    )

    def counts(self, constants):
        result = analyze_source(self.PROGRAM)
        call_model = ReturnFunctionCallModel(
            result.program, result.return_functions
        )
        return known_trip_counts(
            result.program,
            result.constants if constants else None,
            call_model if constants else None,
        )

    def test_with_constants_two_loops_known(self):
        verdicts = [v for v in self.counts(True) if v.procedure_name == "work"]
        known = {v.induction_variable.var.name: v.count for v in verdicts if v.known}
        # N=40 -> 40 trips; M=25 step 2 -> 13 trips; L unknown.
        assert known == {"i": 40, "j": 13}

    def test_without_constants_nothing_known(self):
        verdicts = [v for v in self.counts(False) if v.procedure_name == "work"]
        assert not any(v.known for v in verdicts)

    def test_zero_trip_loop(self):
        result = analyze_source(
            "      PROGRAM MAIN\n      CALL W(0)\n      END\n"
            "      SUBROUTINE W(M)\n      DO I = 1, M\n      S = S + I\n"
            "      ENDDO\n      END\n"
        )
        verdicts = [
            v
            for v in known_trip_counts(result.program, result.constants)
            if v.procedure_name == "w"
        ]
        assert verdicts[0].count == 0

    def test_downward_loop(self):
        result = analyze_source(
            "      PROGRAM MAIN\n      CALL W(10)\n      END\n"
            "      SUBROUTINE W(M)\n      DO I = M, 1, -3\n      S = S + I\n"
            "      ENDDO\n      END\n"
        )
        verdicts = [
            v
            for v in known_trip_counts(result.program, result.constants)
            if v.procedure_name == "w" and v.known
        ]
        assert verdicts[0].count == 4  # 10, 7, 4, 1

    def test_trip_count_matches_execution(self):
        from repro.ir.interp import run_source

        # DO I = 1, 40 -> S printed = sum 1..40 = 820.
        source = (
            "      PROGRAM MAIN\n      CALL W(40)\n      END\n"
            "      SUBROUTINE W(M)\n      S = 0\n"
            "      DO I = 1, M\n      S = S + 1\n      ENDDO\n"
            "      PRINT *, S\n      END\n"
        )
        result = analyze_source(source)
        verdicts = [
            v
            for v in known_trip_counts(result.program, result.constants)
            if v.procedure_name == "w" and v.known
        ]
        assert verdicts[0].count == 40
        assert run_source(source).output == ["40"]


class TestTripCountEdges:
    def test_upward_test_with_negative_step_detected(self):
        # DO-style loop hand-built via GOTO: i starts above the bound
        # and decreases while the test is `i <= bound` with i starting
        # below: a normal downward DO covers the 0-trip case; here we
        # check the never-terminating classification path via a
        # synthetic le/negative-step combination.
        from repro.apps.trip_counts import _trip_count

        # le with non-positive step: terminates only if 0 trips.
        assert _trip_count(5, 3, -1, "le") == 0
        assert _trip_count(1, 5, -1, "le") is None  # would spin forever
        # ge with non-negative step mirrored.
        assert _trip_count(1, 5, 1, "ge") == 0
        assert _trip_count(9, 5, 1, "ge") is None

    def test_strict_comparisons(self):
        from repro.apps.trip_counts import _trip_count

        assert _trip_count(1, 5, 1, "lt") == 4
        assert _trip_count(5, 1, -1, "gt") == 4
        assert _trip_count(1, 10, 3, "le") == 4  # 1 4 7 10
