"""Subscript-linearity study tests (the Shen-Li-Yew motivation)."""

import pytest

from repro.apps.subscripts import SubscriptClass, classify_subscripts
from repro.ipcp.driver import analyze_source


def study_pair(text):
    """(without-IPCP study, with-IPCP study) for one program."""
    result = analyze_source(text)
    without = classify_subscripts(result.program, None, result.return_functions)
    with_ipcp = classify_subscripts(
        result.program, result.constants, result.return_functions
    )
    return without, with_ipcp


class TestClassification:
    def test_plain_induction_subscript_linear(self):
        without, _ = study_pair(
            "      PROGRAM MAIN\n      INTEGER A(100)\n"
            "      DO I = 1, 100\n      A(I) = I\n      ENDDO\n      END\n"
        )
        assert without.total == 1
        assert without.linear == 1

    def test_affine_subscript_linear(self):
        without, _ = study_pair(
            "      PROGRAM MAIN\n      INTEGER A(100)\n"
            "      DO I = 1, 20\n      A(3 * I + 2) = I\n      ENDDO\n"
            "      END\n"
        )
        assert without.linear == 1

    def test_quadratic_subscript_nonlinear(self):
        without, with_ipcp = study_pair(
            "      PROGRAM MAIN\n      INTEGER A(100)\n"
            "      DO I = 1, 10\n      A(I * I) = I\n      ENDDO\n      END\n"
        )
        assert without.nonlinear == 1
        assert with_ipcp.nonlinear == 1  # constants cannot fix I*I

    def test_symbolic_coefficient_nonlinear_without_ipcp(self):
        text = (
            "      PROGRAM MAIN\n      CALL W(8)\n      END\n"
            "      SUBROUTINE W(LDA)\n      INTEGER A(100)\n"
            "      DO I = 1, 10\n      A(LDA * I) = I\n      ENDDO\n"
            "      END\n"
        )
        without, with_ipcp = study_pair(text)
        assert without.nonlinear == 1
        assert with_ipcp.linear == 1  # LDA = 8 linearizes it

    def test_symbolic_offset_is_linear(self):
        # A(I + BASE): BASE is loop-invariant; affine even when unknown.
        without, _ = study_pair(
            "      PROGRAM MAIN\n      INTEGER A(100)\n      READ *, BASE\n"
            "      DO I = 1, 10\n      A(I + BASE) = I\n      ENDDO\n"
            "      END\n"
        )
        assert without.linear == 1

    def test_unknown_multiplier_from_read_stays_nonlinear(self):
        without, with_ipcp = study_pair(
            "      PROGRAM MAIN\n      INTEGER A(100)\n      READ *, N\n"
            "      DO I = 1, 10\n      A(N * I) = I\n      ENDDO\n      END\n"
        )
        assert without.nonlinear == 1
        assert with_ipcp.nonlinear == 1  # N really is unknown

    def test_subscripts_outside_loops_ignored(self):
        without, _ = study_pair(
            "      PROGRAM MAIN\n      INTEGER A(10)\n      A(3) = 1\n"
            "      END\n"
        )
        assert without.total == 0

    def test_array_load_indices_classified_too(self):
        without, _ = study_pair(
            "      PROGRAM MAIN\n      INTEGER A(100)\n"
            "      DO I = 1, 10\n      X = A(2 * I)\n      ENDDO\n      END\n"
        )
        assert without.total == 1
        assert without.linear == 1


class TestStudyShape:
    #: The linpackd-like pattern: leading-dimension multipliers flow in
    #: as arguments; half the subscripts are LDA-style products.
    WORKLOAD = (
        "      PROGRAM MAIN\n"
        "      CALL SAXPYISH(100)\n"
        "      CALL SCALEISH(100)\n"
        "      END\n"
        "      SUBROUTINE SAXPYISH(LDA)\n"
        "      INTEGER A(10000), B(10000)\n"
        "      DO J = 1, 10\n"
        "      DO I = 1, 10\n"
        "      A(LDA * J + I) = B(LDA * J + I) + 1\n"
        "      ENDDO\n"
        "      ENDDO\n"
        "      END\n"
        "      SUBROUTINE SCALEISH(LDA)\n"
        "      INTEGER C(10000)\n"
        "      DO I = 1, 100\n"
        "      C(I) = C(I) * 3\n"
        "      ENDDO\n"
        "      DO K = 1, 10\n"
        "      C(LDA * K) = 0\n"
        "      ENDDO\n"
        "      END\n"
    )

    def test_interprocedural_constants_linearize_subscripts(self):
        without, with_ipcp = study_pair(self.WORKLOAD)
        assert without.total == with_ipcp.total
        # The Shen-Li-Yew effect: a large fraction of the previously
        # nonlinear subscripts become linear.
        assert without.nonlinear > 0
        recovered = without.nonlinear - with_ipcp.nonlinear
        assert recovered / without.nonlinear >= 0.5

    def test_linear_fraction_monotone(self):
        without, with_ipcp = study_pair(self.WORKLOAD)
        assert with_ipcp.linear_fraction() >= without.linear_fraction()

    def test_per_subscript_details_available(self):
        _, with_ipcp = study_pair(self.WORKLOAD)
        for info in with_ipcp.subscripts:
            assert info.procedure_name
            assert info.classification in (
                SubscriptClass.LINEAR,
                SubscriptClass.NONLINEAR,
            )
