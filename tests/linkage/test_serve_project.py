"""The daemon serving linked multi-file projects: protocol validation
of ``params.project``, cold/warm/invalidate round trips over the real
wire, cross-file explain, and cache isolation between a project and
its member files."""

from __future__ import annotations

import pytest

from repro.linkage import analyze_linked_files
from repro.serve import (
    ReproClient,
    ReproServer,
    ServeConfig,
    ServeRequestError,
    wait_for_server,
)
from repro.serve.protocol import ProtocolError, parse_request

MAIN_F = (
    "      PROGRAM MAIN\n"
    "      EXTERNAL WORK\n"
    "      COMMON /SHARED/ BASE, SCALE\n"
    "      BASE = 40\n"
    "      SCALE = 2\n"
    "      CALL WORK(100)\n"
    "      END\n"
)
WORK_F = (
    "      SUBROUTINE WORK(N)\n"
    "      COMMON /SHARED/ BASE, SCALE\n"
    "      M = BASE + N * SCALE\n"
    "      PRINT *, M\n"
    "      RETURN\n"
    "      END\n"
)


@pytest.fixture
def project(tmp_path):
    main = tmp_path / "main.f"
    work = tmp_path / "work.f"
    main.write_text(MAIN_F)
    work.write_text(WORK_F)
    return [str(main), str(work)]


def make_server(tmp_path, **overrides) -> ReproServer:
    settings = dict(
        socket_path=str(tmp_path / "repro.sock"),
        cache_dir=str(tmp_path / "cache"),
        drain_timeout_s=2.0,
    )
    settings.update(overrides)
    server = ReproServer(ServeConfig(**settings))
    server.start()
    assert wait_for_server(server.config.socket_path, timeout=5.0)
    return server


class TestProtocol:
    def test_project_accepted_without_path(self):
        request = parse_request(
            {"op": "analyze", "params": {"project": ["a.f", "b.f"]}}
        )
        assert request.path is None
        assert request.params["project"] == ["a.f", "b.f"]

    def test_project_and_path_are_mutually_exclusive(self):
        with pytest.raises(ProtocolError, match="not both"):
            parse_request(
                {"op": "analyze", "path": "a.f",
                 "params": {"project": ["b.f"]}}
            )

    @pytest.mark.parametrize("bad", [[], ["a.f", ""], "a.f", [1]])
    def test_malformed_project_rejected(self, bad):
        with pytest.raises(ProtocolError):
            parse_request(
                {"op": "analyze", "params": {"project": bad}}
            )

    def test_bad_entry_rejected(self):
        with pytest.raises(ProtocolError, match="entry"):
            parse_request(
                {"op": "analyze",
                 "params": {"project": ["a.f"], "entry": ""}}
            )

    def test_path_still_required_without_project(self):
        with pytest.raises(ProtocolError, match="non-empty 'path'"):
            parse_request({"op": "analyze"})


class TestServeProject:
    def test_cold_warm_invalidate_round_trip(self, tmp_path, project):
        truth, _ = analyze_linked_files(project)
        server = make_server(tmp_path)
        try:
            with ReproClient(server.config.socket_path) as client:
                cold = client.analyze_project(project)
                result = cold["result"]
                assert result["status"] == "ok"
                assert not result["replayed"]
                assert result["project"] == project
                assert (
                    result["constants_report"]
                    == truth.constants.format_report()
                )
                assert result["substituted"] == truth.substituted_constants

                warm = client.analyze_project(project)
                assert warm["result"]["replayed"]
                assert (
                    warm["result"]["constants_report"]
                    == result["constants_report"]
                )

                evicted = client.invalidate_project(project)
                assert evicted["result"]["invalidated"]
                rerun = client.analyze_project(project)
                assert not rerun["result"]["replayed"]
                # Unchanged project: the manifest diff is empty, so no
                # summaries were recomputed.
                counters = rerun["result"]["metrics"]
                for namespace in ("ret", "fwd"):
                    assert f"recomputed_{namespace}" not in counters
        finally:
            server.request_stop()
            assert server.finish() == 0

    def test_cross_file_explain(self, tmp_path, project):
        server = make_server(tmp_path)
        try:
            with ReproClient(server.config.socket_path) as client:
                response = client.analyze_project(
                    project, explain="base@work"
                )
                rendering = response["result"]["explain"]
                assert "base@work = 40" in rendering
                assert "main.f" in rendering
        finally:
            server.request_stop()
            server.finish()

    def test_link_errors_are_diagnostics_not_crashes(self, tmp_path):
        bad = tmp_path / "bad.f"
        bad.write_text(
            "      PROGRAM MAIN\n"
            "      EXTERNAL MISSING\n"
            "      CALL MISSING\n"
            "      END\n"
        )
        server = make_server(tmp_path)
        try:
            with ReproClient(server.config.socket_path) as client:
                response = client.analyze_project([str(bad)])
                result = response["result"]
                assert result["status"] == "diagnostics"
                assert "E005" in result["diagnostics"]
                # The daemon survives and keeps serving.
                assert client.status()["result"]["counters"].get(
                    "serve_internal_errors", 0
                ) == 0
        finally:
            server.request_stop()
            server.finish()

    def test_missing_member_file_is_an_error_status(self, tmp_path, project):
        server = make_server(tmp_path)
        try:
            with ReproClient(server.config.socket_path) as client:
                response = client.analyze_project(
                    project + [str(tmp_path / "ghost.f")]
                )
                assert response["result"]["status"] == "error"
        finally:
            server.request_stop()
            server.finish()

    def test_project_and_member_file_do_not_share_replay(
        self, tmp_path, project
    ):
        """Analyzing main.f alone must not replay the project's run
        (and vice versa): the bundle text keys a distinct entry."""
        server = make_server(tmp_path)
        try:
            with ReproClient(server.config.socket_path) as client:
                client.analyze_project(project)
                alone = client.analyze(project[0])
                assert not alone["result"]["replayed"]
                again = client.analyze_project(project)
                assert again["result"]["replayed"]
        finally:
            server.request_stop()
            server.finish()

    def test_mid_stream_invalidate_after_edit_recomputes_dirty_set(
        self, tmp_path, project
    ):
        """The chaos-smoke scenario, in-process: analyze a project,
        edit one file mid-stream, invalidate, re-analyze — the warm run
        recomputes exactly the dirty procedures (cross-file closure)."""
        server = make_server(tmp_path)
        try:
            with ReproClient(server.config.socket_path) as client:
                client.analyze_project(project)
                with open(project[1], "w", encoding="utf-8") as handle:
                    handle.write(WORK_F.replace("N * SCALE", "N * SCALE + 1"))
                client.invalidate_project(project)
                rerun = client.analyze_project(project)
                result = rerun["result"]
                assert not result["replayed"]
                invalidation = result["invalidation"]
                assert set(invalidation["edited"]) == {"work"}
                assert set(invalidation["downstream"]) == {"main"}
                assert invalidation["dirty_count"] == 2
        finally:
            server.request_stop()
            server.finish()
