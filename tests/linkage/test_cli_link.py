"""CLI surface of the linkage layer: ``repro link``, ``repro batch
--link``, and the satellite-4 regression — duplicate top-level
procedure names across per-file batch inputs get a deterministic
isolation note (and a hard exit-2 error in ``--link`` mode)."""

import pytest

from repro.cli import main

MAIN_F = (
    "      PROGRAM MAIN\n"
    "      EXTERNAL WORK\n"
    "      COMMON /SHARED/ BASE, SCALE\n"
    "      BASE = 40\n"
    "      SCALE = 2\n"
    "      CALL WORK(100)\n"
    "      END\n"
)
WORK_F = (
    "      SUBROUTINE WORK(N)\n"
    "      COMMON /SHARED/ BASE, SCALE\n"
    "      M = BASE + N * SCALE\n"
    "      PRINT *, M\n"
    "      RETURN\n"
    "      END\n"
)


@pytest.fixture
def project(tmp_path):
    main_path = tmp_path / "main.f"
    work_path = tmp_path / "work.f"
    main_path.write_text(MAIN_F)
    work_path.write_text(WORK_F)
    return [str(main_path), str(work_path)]


class TestLinkCommand:
    def test_links_and_reports_cross_file_constants(self, project, capsys):
        assert main(["link", *project]) == 0
        out = capsys.readouterr().out
        assert "linked 2 file(s) -> 2 procedure(s)" in out
        assert "CONSTANTS(work) = {base=40, n=100, scale=2}" in out

    def test_symbols_flag_prints_symbol_table(self, project, capsys):
        assert main(["link", *project, "--symbols"]) == 0
        out = capsys.readouterr().out
        assert "symbol table" in out
        assert "/shared/" in out

    def test_explain_crosses_files(self, project, capsys):
        assert main(["link", *project, "--explain", "base@work"]) == 0
        out = capsys.readouterr().out
        assert "base@work = 40" in out
        assert "main.f" in out

    def test_link_error_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.f"
        bad.write_text(
            "      PROGRAM MAIN\n"
            "      EXTERNAL MISSING\n"
            "      CALL MISSING\n"
            "      END\n"
        )
        assert main(["link", str(bad)]) == 2
        err = capsys.readouterr().err
        assert "E005" in err and "missing" in err

    def test_missing_file_exits_1(self, tmp_path, capsys):
        assert main(["link", str(tmp_path / "nope.f")]) == 1

    def test_entry_flag(self, tmp_path, capsys):
        one = tmp_path / "one.f"
        two = tmp_path / "two.f"
        one.write_text("      PROGRAM ALPHA\n      CALL S(1)\n      END\n")
        two.write_text(
            "      PROGRAM BETA\n      CALL S(2)\n      END\n"
            "\n      SUBROUTINE S(N)\n      PRINT *, N\n"
            "      RETURN\n      END\n"
        )
        assert main(["link", str(one), str(two)]) == 2  # ambiguous
        capsys.readouterr()
        assert main(["link", str(one), str(two), "--entry", "alpha"]) == 0
        out = capsys.readouterr().out
        assert "CONSTANTS(s) = {n=1}" in out

    def test_replay_round_trip(self, project, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(["link", *project, "--cache-dir", cache]) == 0
        first = capsys.readouterr().out
        assert "linked 2 file(s)" in first
        assert main(["link", *project, "--cache-dir", cache]) == 0
        second = capsys.readouterr().out
        # The replayed run serves the recorded payload (no live link).
        assert "linked 2 file(s)" not in second
        assert "CONSTANTS(work) = {base=40, n=100, scale=2}" in second


class TestBatchLink:
    def test_batch_link_delegates_to_linker(self, project, capsys):
        assert main(["batch", *project, "--link"]) == 0
        out = capsys.readouterr().out
        assert "CONSTANTS(work) = {base=40, n=100, scale=2}" in out

    def test_duplicate_names_exit_2_in_link_mode(
        self, project, tmp_path, capsys
    ):
        copy = tmp_path / "copy.f"
        copy.write_text(WORK_F)
        assert main(["batch", *project, str(copy), "--link"]) == 2
        err = capsys.readouterr().err
        assert "duplicate definition of 'work'" in err


class TestDuplicateBatchNote:
    """Satellite 4: per-file batch mode used to silently analyze files
    whose top-level names collide (shared caches keyed per file make
    that sound but surprising); now it says so, deterministically."""

    def test_note_names_the_unit_and_both_files(self, project, tmp_path, capsys):
        copy = tmp_path / "copy.f"
        copy.write_text(WORK_F)
        assert main(["batch", *project, str(copy)]) == 0
        err = capsys.readouterr().err
        assert "unit 'work' is defined in" in err
        assert "work.f" in err and "copy.f" in err
        assert "use --link" in err

    def test_note_is_deterministic(self, project, tmp_path, capsys):
        copy = tmp_path / "copy.f"
        copy.write_text(WORK_F)
        main(["batch", *project, str(copy)])
        first = capsys.readouterr().err
        main(["batch", *project, str(copy)])
        second = capsys.readouterr().err
        assert first == second

    def test_no_note_without_duplicates(self, project, capsys):
        assert main(["batch", *project]) == 0
        err = capsys.readouterr().err
        assert "defined in" not in err

    def test_per_file_results_unchanged_by_duplicates(
        self, project, tmp_path, capsys
    ):
        copy = tmp_path / "copy.f"
        copy.write_text(WORK_F)
        assert main(["batch", *project, str(copy)]) == 0
        out = capsys.readouterr().out
        # Closed-world per-file analysis: the EXTERNAL call clobbers
        # everything, so no file reports interprocedural constants.
        assert "main.f: 0 constant(s), 0 substituted" in out


class TestOracleLinkTrials:
    def test_small_campaign_passes(self, capsys):
        assert main(["oracle", "--link-trials", "4", "--seed", "50"]) == 0
        out = capsys.readouterr().out
        assert "4 link trial(s): 4 passed, 0 failed" in out
