"""The partition-invariance differential harness, tested on itself:
the splitter's structural guarantees (deterministic, non-empty files,
exactly the needed EXTERNAL declarations) and a real seeded campaign
asserting linked analysis is byte-identical to single-file analysis.
"""

import re

import pytest

from repro.oracle.partition import (
    check_partition,
    run_link_trials,
    run_trial,
    split_program,
)
from repro.suite.generator import GeneratorConfig, generate_program

GEN_CONFIG = GeneratorConfig(procedures=4)


class TestSplitProgram:
    def test_deterministic(self):
        source = generate_program(11, GEN_CONFIG)
        assert split_program(source, 3, 11) == split_program(source, 3, 11)

    def test_every_file_nonempty_and_units_preserved(self):
        source = generate_program(5, GEN_CONFIG)
        files = split_program(source, 3, 5)
        assert len(files) == 3
        names = []
        for _, text in files:
            assert text.strip()
            names.extend(
                m.group(1).lower()
                for m in re.finditer(
                    r"(?:PROGRAM|SUBROUTINE|FUNCTION)\s+(\w+)", text
                )
            )
        original = [
            m.group(1).lower()
            for m in re.finditer(
                r"(?:PROGRAM|SUBROUTINE|FUNCTION)\s+(\w+)", source
            )
        ]
        assert sorted(names) == sorted(original)

    def test_external_decls_cover_exactly_cross_file_references(self):
        source = (
            "      PROGRAM MAIN\n"
            "      CALL A\n"
            "      CALL B\n"
            "      END\n"
            "\n"
            "      SUBROUTINE A\n"
            "      RETURN\n"
            "      END\n"
            "\n"
            "      SUBROUTINE B\n"
            "      CALL A\n"
            "      RETURN\n"
            "      END\n"
        )
        for seed in range(6):
            for text_name, text in split_program(source, 2, seed):
                defined = set(
                    m.group(1).lower()
                    for m in re.finditer(
                        r"(?:PROGRAM|SUBROUTINE)\s+(\w+)", text
                    )
                )
                declared = set()
                for m in re.finditer(r"EXTERNAL\s+([A-Z, ]+)", text):
                    declared.update(
                        p.strip().lower() for p in m.group(1).split(",")
                    )
                # Declared externals are never defined in the same file.
                assert not (declared & defined), (seed, text_name)

    def test_parts_clamped_to_unit_count(self):
        source = (
            "      PROGRAM MAIN\n"
            "      PRINT *, 1\n"
            "      END\n"
        )
        assert len(split_program(source, 4, 0)) == 1


class TestInvariance:
    def test_handcrafted_program_all_partitions(self):
        source = (
            "      PROGRAM MAIN\n"
            "      COMMON /G/ GV\n"
            "      GV = 9\n"
            "      CALL P(4)\n"
            "      END\n"
            "\n"
            "      SUBROUTINE P(N)\n"
            "      COMMON /G/ GV\n"
            "      CALL Q(N + GV)\n"
            "      RETURN\n"
            "      END\n"
            "\n"
            "      SUBROUTINE Q(M)\n"
            "      PRINT *, M\n"
            "      RETURN\n"
            "      END\n"
        )
        for seed in range(8):
            assert check_partition(source, 2, seed) == []
            assert check_partition(source, 3, seed) == []

    @pytest.mark.parametrize("seed", range(12))
    def test_seeded_generated_trials(self, seed):
        trial = run_trial(seed, GEN_CONFIG, max_partitions=4)
        assert trial.ok, "\n".join(trial.discrepancies)


class TestReport:
    def test_campaign_summary(self):
        report = run_link_trials(4, seed=100, generator_config=GEN_CONFIG)
        assert report.ok
        assert report.trials == 4
        assert "4 link trial(s): 4 passed, 0 failed" == report.summary()

    def test_progress_callback_sees_every_trial(self):
        seen = []
        run_link_trials(
            3, seed=0, generator_config=GEN_CONFIG,
            progress=seen.append,
        )
        assert [t.seed for t in seen] == [0, 1, 2]
