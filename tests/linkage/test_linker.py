"""Unit tests of the whole-program linker: symbol-table construction,
deterministic link diagnostics, entry selection, project identity for
caching, and the cheap duplicate scan used by per-file batch mode."""

import os

import pytest

from repro.diagnostics import E_IO, E_LINK, W_LINK, Severity
from repro.linkage import (
    analyze_linked_sources,
    duplicate_units_across_files,
    link_files,
    link_sources,
    project_bundle_text,
    project_label,
    scan_unit_names,
)

MAIN_F = (
    "      PROGRAM MAIN\n"
    "      EXTERNAL WORK\n"
    "      COMMON /SHARED/ BASE, SCALE\n"
    "      BASE = 40\n"
    "      SCALE = 2\n"
    "      CALL WORK(100)\n"
    "      END\n"
)
WORK_F = (
    "      SUBROUTINE WORK(N)\n"
    "      COMMON /SHARED/ BASE, SCALE\n"
    "      M = BASE + N * SCALE\n"
    "      PRINT *, M\n"
    "      RETURN\n"
    "      END\n"
)


def errors_with(link, code):
    return [d for d in link.diagnostics.errors() if d.code == code]


class TestSuccessfulLink:
    def test_symbol_table_and_merge(self):
        link = link_sources([("main.f", MAIN_F), ("work.f", WORK_F)])
        assert link.ok
        assert [u.name for u in link.units] == ["main", "work"]
        assert link.entry == "main"
        table = link.format_symbol_table()
        assert "main" in table and "work.f" in table
        assert "/shared/" in table
        assert link.module is not None
        assert [u.name for u in link.module.units] == ["main", "work"]

    def test_cross_file_constants(self):
        result, link = analyze_linked_sources(
            [("main.f", MAIN_F), ("work.f", WORK_F)]
        )
        assert link.ok and result is not None
        constants = result.constants.constants_of("work")
        assert {v.name: c for v, c in constants.items()} == {
            "base": 40, "n": 100, "scale": 2,
        }

    def test_single_file_degenerate_case(self):
        link = link_sources([("only.f", MAIN_F.replace("CALL WORK(100)\n", "") .replace("      EXTERNAL WORK\n", ""))])
        assert link.ok


class TestLinkErrors:
    def test_undefined_external(self):
        link = link_sources(
            [("a.f", "      PROGRAM MAIN\n      EXTERNAL NOPE\n"
              "      CALL NOPE\n      END\n")]
        )
        assert not link.ok
        (err,) = errors_with(link, E_LINK)
        assert "nope" in err.message and "not defined" in err.message

    def test_undefined_symbol_without_external(self):
        link = link_sources(
            [("a.f", "      PROGRAM MAIN\n      CALL GHOST\n      END\n")]
        )
        assert not link.ok
        (err,) = errors_with(link, E_LINK)
        assert "ghost" in err.message

    def test_duplicate_definition_lists_every_site(self):
        link = link_sources(
            [
                ("a.f", "      SUBROUTINE S\n      RETURN\n      END\n"),
                ("b.f", "      SUBROUTINE S\n      RETURN\n      END\n"),
                ("m.f", "      PROGRAM MAIN\n      CALL S\n      END\n"),
            ]
        )
        assert not link.ok
        (err,) = errors_with(link, E_LINK)
        assert "a.f" in err.message and "b.f" in err.message

    def test_no_program_unit(self):
        link = link_sources([("a.f", WORK_F)])
        assert not link.ok
        assert any(
            "no PROGRAM unit" in d.message for d in link.diagnostics.errors()
        )

    def test_common_shape_mismatch(self):
        link = link_sources(
            [
                ("a.f", "      PROGRAM MAIN\n      COMMON /B/ X, Y\n"
                 "      X = 1\n      CALL S\n      END\n"),
                ("b.f", "      SUBROUTINE S\n      COMMON /B/ X\n"
                 "      PRINT *, X\n      RETURN\n      END\n"),
            ]
        )
        assert not link.ok
        (err,) = errors_with(link, E_LINK)
        assert "/b/" in err.message


class TestEntrySelection:
    TWO_MAINS = [
        ("one.f", "      PROGRAM ALPHA\n      CALL S(1)\n      END\n"),
        ("two.f", "      PROGRAM BETA\n      CALL S(2)\n      END\n"
         "\n      SUBROUTINE S(N)\n      PRINT *, N\n"
         "      RETURN\n      END\n"),
    ]

    def test_ambiguous_without_entry(self):
        link = link_sources(self.TWO_MAINS)
        assert not link.ok
        assert any("--entry" in d.message for d in link.diagnostics.errors())

    def test_entry_selects_and_warns_about_dropped(self):
        link = link_sources(self.TWO_MAINS, entry="beta")
        assert link.ok
        assert link.entry == "beta"
        warnings = [
            d for d in link.diagnostics
            if d.severity is Severity.WARNING and d.code == W_LINK
        ]
        assert any("alpha" in w.message for w in warnings)
        assert "alpha" not in [u.name for u in link.module.units]

    def test_unknown_entry(self):
        link = link_sources(self.TWO_MAINS, entry="gamma")
        assert not link.ok
        assert any("gamma" in d.message for d in link.diagnostics.errors())


class TestLinkFiles:
    def test_unreadable_file_is_fatal(self, tmp_path):
        missing = str(tmp_path / "nope.f")
        link = link_files([missing])
        assert not link.ok
        assert errors_with(link, E_IO)

    def test_round_trip(self, tmp_path):
        a = tmp_path / "a.f"
        b = tmp_path / "b.f"
        a.write_text(MAIN_F)
        b.write_text(WORK_F)
        link = link_files([str(a), str(b)])
        assert link.ok


class TestProjectIdentity:
    def test_bundle_text_is_injective_on_file_splits(self):
        one = project_bundle_text([("a.f", "X"), ("b.f", "Y")])
        other = project_bundle_text([("a.f", "XY"), ("b.f", "")])
        merged = project_bundle_text([("a.f", "X\x00Y")])
        assert len({one, other, merged}) == 3

    def test_bundle_text_includes_entry(self):
        named = [("a.f", MAIN_F)]
        assert project_bundle_text(named, "main") != project_bundle_text(named)

    def test_label_is_cwd_independent_and_rooted(self, tmp_path, monkeypatch):
        paths = [str(tmp_path / "a.f"), str(tmp_path / "b.f")]
        before = project_label(paths)
        monkeypatch.chdir(tmp_path)
        assert project_label(paths) == before
        assert before.startswith("/repro-linked/")

    def test_label_depends_on_entry_and_paths(self, tmp_path):
        paths = [str(tmp_path / "a.f")]
        assert project_label(paths) != project_label(paths, "main")
        assert project_label(paths) != project_label(
            [str(tmp_path / "b.f")]
        )


class TestDuplicateScan:
    def test_scan_unit_names(self):
        assert scan_unit_names(MAIN_F + "\n" + WORK_F) == ["main", "work"]
        assert scan_unit_names(
            "      INTEGER FUNCTION F(X)\n      F = X\n      RETURN\n"
            "      END\n"
        ) == ["f"]

    def test_duplicates_across_files(self, tmp_path):
        a = tmp_path / "a.f"
        b = tmp_path / "b.f"
        c = tmp_path / "c.f"
        a.write_text(MAIN_F)
        b.write_text(WORK_F)
        c.write_text(WORK_F)
        duplicates = duplicate_units_across_files(
            [str(a), str(b), str(c)]
        )
        assert list(duplicates) == ["work"]
        assert duplicates["work"] == [str(b), str(c)]

    def test_unreadable_files_are_skipped(self, tmp_path):
        a = tmp_path / "a.f"
        a.write_text(MAIN_F)
        assert duplicate_units_across_files(
            [str(a), str(tmp_path / "missing.f")]
        ) == {}
