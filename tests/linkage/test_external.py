"""EXTERNAL declarations in the frontend and their per-file lowering.

Per-file (closed-world) analysis must treat a call to an EXTERNAL
procedure as a conservative clobber — every scalar VarRef actual,
every visible COMMON member, and the function-result target go to
bottom — because the callee's body lives in a file this run cannot
see. When the name *is* defined in the same module (the linked case),
the declaration is inert and the call lowers as a real call.
"""

import pytest

from repro.config import AnalysisConfig
from repro.frontend import ast
from repro.frontend.parser import parse_source
from repro.ir.lowering import SemanticError, lower_module
from repro.ipcp.driver import analyze_source


def external_decls(source):
    module = parse_source(source, "x.f")
    return [
        decl
        for unit in module.units
        for decl in unit.decls
        if isinstance(decl, ast.ExternalDecl)
    ]


class TestParsing:
    def test_single_and_list_forms(self):
        decls = external_decls(
            "      PROGRAM MAIN\n"
            "      EXTERNAL F\n"
            "      EXTERNAL G, H\n"
            "      CALL F\n"
            "      END\n"
        )
        assert [d.names for d in decls] == [["f"], ["g", "h"]]

    def test_interleaves_with_other_declarations(self):
        decls = external_decls(
            "      PROGRAM MAIN\n"
            "      COMMON /B/ X\n"
            "      EXTERNAL F\n"
            "      DIMENSION A(3)\n"
            "      CALL F\n"
            "      END\n"
        )
        assert [d.names for d in decls] == [["f"]]


class TestConservativeClobber:
    def test_scalar_actuals_and_commons_go_bottom(self):
        result = analyze_source(
            "      PROGRAM MAIN\n"
            "      EXTERNAL MYSTERY\n"
            "      COMMON /G/ GV\n"
            "      GV = 7\n"
            "      N = 5\n"
            "      CALL MYSTERY(N)\n"
            "      CALL SINK(N, GV)\n"
            "      END\n"
            "\n"
            "      SUBROUTINE SINK(A, B)\n"
            "      PRINT *, A + B\n"
            "      RETURN\n"
            "      END\n",
            AnalysisConfig(),
        )
        assert result.constants.constants_of("sink") == {}

    def test_expression_actuals_do_not_clobber_their_variables(self):
        result = analyze_source(
            "      PROGRAM MAIN\n"
            "      EXTERNAL MYSTERY\n"
            "      N = 5\n"
            "      CALL MYSTERY(N + 1)\n"
            "      CALL SINK(N)\n"
            "      END\n"
            "\n"
            "      SUBROUTINE SINK(A)\n"
            "      PRINT *, A\n"
            "      RETURN\n"
            "      END\n",
            AnalysisConfig(),
        )
        constants = result.constants.constants_of("sink")
        assert {v.name: c for v, c in constants.items()} == {"a": 5}

    def test_external_function_result_is_bottom(self):
        result = analyze_source(
            "      PROGRAM MAIN\n"
            "      EXTERNAL OPAQUE\n"
            "      K = OPAQUE(3)\n"
            "      CALL SINK(K)\n"
            "      END\n"
            "\n"
            "      SUBROUTINE SINK(A)\n"
            "      PRINT *, A\n"
            "      RETURN\n"
            "      END\n",
            AnalysisConfig(),
        )
        assert result.constants.constants_of("sink") == {}

    def test_external_shadows_intrinsic(self):
        # MOD is an intrinsic; EXTERNAL MOD makes it an opaque callee,
        # so MOD(10, 3) is no longer folded to 1.
        shadowed = analyze_source(
            "      PROGRAM MAIN\n"
            "      EXTERNAL MOD\n"
            "      K = MOD(10, 3)\n"
            "      CALL SINK(K)\n"
            "      END\n"
            "\n"
            "      SUBROUTINE SINK(A)\n"
            "      PRINT *, A\n"
            "      RETURN\n"
            "      END\n",
            AnalysisConfig(),
        )
        assert shadowed.constants.constants_of("sink") == {}
        intrinsic = analyze_source(
            "      PROGRAM MAIN\n"
            "      K = MOD(10, 3)\n"
            "      CALL SINK(K)\n"
            "      END\n"
            "\n"
            "      SUBROUTINE SINK(A)\n"
            "      PRINT *, A\n"
            "      RETURN\n"
            "      END\n",
            AnalysisConfig(),
        )
        constants = intrinsic.constants.constants_of("sink")
        assert {v.name: c for v, c in constants.items()} == {"a": 1}


class TestLinkedModeIsInert:
    def test_defined_in_module_wins_over_external(self):
        # The linked case: the EXTERNAL declaration stays in the merged
        # module, but the callee is defined here, so the call is real
        # and constants flow through it.
        result = analyze_source(
            "      PROGRAM MAIN\n"
            "      EXTERNAL WORK\n"
            "      CALL WORK(100)\n"
            "      END\n"
            "\n"
            "      SUBROUTINE WORK(N)\n"
            "      PRINT *, N\n"
            "      RETURN\n"
            "      END\n",
            AnalysisConfig(),
        )
        constants = result.constants.constants_of("work")
        assert {v.name: c for v, c in constants.items()} == {"n": 100}


class TestSemanticErrors:
    def test_external_name_used_as_variable(self):
        module = parse_source(
            "      PROGRAM MAIN\n"
            "      EXTERNAL F\n"
            "      F = 3\n"
            "      END\n",
            "x.f",
        )
        with pytest.raises(SemanticError, match="used as a variable"):
            lower_module(module, None)

    def test_external_conflicts_with_declared_variable(self):
        module = parse_source(
            "      PROGRAM MAIN\n"
            "      COMMON /B/ F\n"
            "      EXTERNAL F\n"
            "      CALL F\n"
            "      END\n",
            "x.f",
        )
        with pytest.raises(SemanticError, match="conflicts"):
            lower_module(module, None)
