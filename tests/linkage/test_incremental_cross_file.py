"""Cross-file incremental re-analysis.

The PR-4 incremental property, lifted to linked projects: after editing
one procedure in one file of a multi-file program, a warm linked run
must recompute exactly the edited procedure's SCC and its transitive
callers — *even when those callers live in other files* — and produce
output byte-identical to a cold linked run. The engine's
``recomputed_ret``/``recomputed_fwd`` tracking is the counter-assertion
that nothing outside the dirty set was touched.

Edit scripts and the dirty-set closure helper are shared with the
single-file property test (:mod:`tests.engine.test_incremental`).
"""

from __future__ import annotations

import pytest

from repro.config import AnalysisConfig
from repro.engine import Engine
from repro.ir.printer import format_program
from repro.linkage import analyze_linked_files, project_label
from repro.oracle.partition import split_program
from repro.suite.generator import GeneratorConfig, generate_program
from tests.engine.test_incremental import apply_edit, callers_closure

GEN_CONFIG = GeneratorConfig(procedures=5)


def render_linked(result) -> str:
    """Every externally visible linked-run output (there is no
    transformed source: the merged module has no single source file)."""
    return "\n".join(
        [
            result.constants.format_report(),
            str(result.substituted_constants),
            repr(sorted(result.substitution.per_procedure.items())),
            format_program(result.program),
        ]
    )


def write_project(tmp_path, files):
    paths = []
    for name, text in files:
        path = tmp_path / name
        path.write_text(text)
        paths.append(str(path))
    return paths


def placement(files):
    """unit name -> file name, scanned from the split file texts."""
    import re

    placed = {}
    for name, text in files:
        for match in re.finditer(
            r"(?:PROGRAM|SUBROUTINE|FUNCTION)\s+(\w+)", text
        ):
            placed[match.group(1).lower()] = name
    return placed


@pytest.mark.parametrize("seed", range(24))
def test_cross_file_incremental_matches_cold_and_touches_only_dirty(
    seed, tmp_path
):
    source = generate_program(seed, GEN_CONFIG)
    parts = 2 + seed % 3
    config = AnalysisConfig()
    cache_dir = str(tmp_path / "cache")

    files = split_program(source, parts, seed)
    paths = write_project(tmp_path, files)
    label = project_label(paths)

    with Engine(cache_dir=cache_dir) as engine:
        result, link = analyze_linked_files(paths, config, engine=engine)
        assert link.ok, link.diagnostics.format()
        first = engine.finish_incremental(label)
        assert first.cold

    # Edit one unit, re-split under the SAME partition (the splitter is
    # deterministic in (unit count, seed), so every unit stays in its
    # file and only the edited unit's file changes on disk).
    edited_source, edited_name = apply_edit(source, seed)
    edited_files = split_program(edited_source, parts, seed)
    write_project(tmp_path, edited_files)

    with Engine(cache_dir=cache_dir) as engine:
        warm, link = analyze_linked_files(paths, config, engine=engine)
        assert link.ok, link.diagnostics.format()
        report = engine.finish_incremental(label)
        recomputed_ret = set(engine.recomputed["ret"])
        recomputed_fwd = set(engine.recomputed["fwd"])

    cold, _ = analyze_linked_files(paths, config)
    assert render_linked(warm) == render_linked(cold)

    assert not report.cold and not report.replayed
    dirty = set(report.dirty)
    assert edited_name in dirty
    allowed = callers_closure(warm.callgraph, edited_name)
    assert dirty <= allowed, (seed, dirty, allowed)
    assert recomputed_ret == dirty, (seed, recomputed_ret, dirty)
    assert recomputed_fwd == dirty, (seed, recomputed_fwd, dirty)
    assert set(report.clean).isdisjoint(recomputed_ret | recomputed_fwd)
    assert set(report.clean) | dirty == {p.name for p in warm.program}


def test_dirty_set_crosses_the_file_boundary(tmp_path):
    """Deterministic demonstration that invalidation follows call
    edges across files: editing the callee's file dirties its caller
    in the *other* file, and only the unrelated procedure stays
    clean."""
    main_f = (
        "      PROGRAM MAIN\n"
        "      EXTERNAL STEP\n"
        "      CALL STEP(4)\n"
        "      CALL OTHER\n"
        "      END\n"
    )
    lib_f = (
        "      SUBROUTINE STEP(N)\n"
        "      PRINT *, N + 1\n"
        "      RETURN\n"
        "      END\n"
        "\n"
        "      SUBROUTINE OTHER\n"
        "      PRINT *, 0\n"
        "      RETURN\n"
        "      END\n"
    )
    config = AnalysisConfig()
    cache_dir = str(tmp_path / "cache")
    main_path = tmp_path / "main.f"
    lib_path = tmp_path / "lib.f"
    main_path.write_text(main_f)
    lib_path.write_text(lib_f)
    paths = [str(main_path), str(lib_path)]
    label = project_label(paths)

    with Engine(cache_dir=cache_dir) as engine:
        analyze_linked_files(paths, config, engine=engine)
        assert engine.finish_incremental(label).cold

    lib_path.write_text(lib_f.replace("N + 1", "N + 2"))
    with Engine(cache_dir=cache_dir) as engine:
        warm, link = analyze_linked_files(paths, config, engine=engine)
        assert link.ok
        report = engine.finish_incremental(label)
        recomputed = set(engine.recomputed["ret"])

    # step was edited in lib.f; main (defined in main.f) calls it and
    # is downstream-dirty; other is untouched.
    assert set(report.dirty) == {"step", "main"}
    assert recomputed == {"step", "main"}
    assert report.clean == ["other"]
    assert report.reasons["main"] == "calls dirty procedure(s): step"


def test_unchanged_project_rerun_recomputes_nothing(tmp_path):
    source = generate_program(9, GEN_CONFIG)
    files = split_program(source, 3, 9)
    paths = write_project(tmp_path, files)
    label = project_label(paths)
    config = AnalysisConfig()
    cache_dir = str(tmp_path / "cache")
    with Engine(cache_dir=cache_dir) as engine:
        analyze_linked_files(paths, config, engine=engine)
        engine.finish_incremental(label)
    with Engine(cache_dir=cache_dir) as engine:
        analyze_linked_files(paths, config, engine=engine)
        report = engine.finish_incremental(label)
        assert engine.recomputed["ret"] == []
        assert engine.recomputed["fwd"] == []
    assert report.dirty == []


def test_project_manifest_is_isolated_from_member_files(tmp_path):
    """Analyzing a member file alone and the project must not share a
    manifest: the synthetic project label keys its own namespace."""
    from repro.ipcp.driver import analyze_file

    source = generate_program(2, GEN_CONFIG)
    files = split_program(source, 2, 2)
    paths = write_project(tmp_path, files)
    label = project_label(paths)
    config = AnalysisConfig()
    cache_dir = str(tmp_path / "cache")
    with Engine(cache_dir=cache_dir) as engine:
        analyze_linked_files(paths, config, engine=engine)
        assert engine.finish_incremental(label).cold
    # A fresh engine analyzing one member file alone is its own cold
    # manifest, not an (incorrect) warm diff against the project's.
    with Engine(cache_dir=cache_dir) as engine:
        analyze_file(paths[-1], config, engine=engine)
        assert engine.finish_incremental(paths[-1]).cold
