"""SSA construction tests."""

import pytest

from repro.analysis.ssa import construct_ssa, ssa_definitions, verify_ssa
from repro.config import AnalysisConfig
from repro.ipcp.driver import prepare_program
from repro.ir.instructions import Assign, Call, Phi, Return
from repro.suite.generator import generate_program

from tests.conftest import TRI_PROGRAM, lower


def ssa_program(text=TRI_PROGRAM):
    program = lower(text)
    prepare_program(program, AnalysisConfig())
    return program


class TestConstruction:
    def test_tri_program_is_valid_ssa(self):
        program = ssa_program()
        for procedure in program:
            assert verify_ssa(procedure) == []

    def test_every_def_versioned(self):
        program = ssa_program()
        for procedure in program:
            for instruction in procedure.cfg.instructions():
                for definition in instruction.defs():
                    assert definition.version is not None
                    assert definition.version >= 1

    def test_every_use_versioned(self):
        program = ssa_program()
        for procedure in program:
            for instruction in procedure.cfg.instructions():
                for use in instruction.uses():
                    assert use.version is not None

    def test_unique_definitions(self):
        program = ssa_program()
        for procedure in program:
            seen = set()
            for instruction in procedure.cfg.instructions():
                for definition in instruction.defs():
                    name = (definition.var, definition.version)
                    assert name not in seen
                    seen.add(name)

    def test_phi_inserted_at_if_join(self):
        program = ssa_program(
            "      PROGRAM MAIN\n"
            "      IF (A .GT. 0) THEN\n      X = 1\n      ELSE\n      X = 2\n"
            "      ENDIF\n      PRINT *, X\n      END\n"
        )
        main = program.procedure("main")
        phis = [i for i in main.cfg.instructions() if isinstance(i, Phi)]
        assert any(p.target.var.name == "x" for p in phis)

    def test_phi_inserted_at_loop_head(self):
        program = ssa_program(
            "      PROGRAM MAIN\n      S = 0\n      DO I = 1, 3\n"
            "      S = S + I\n      ENDDO\n      PRINT *, S\n      END\n"
        )
        main = program.procedure("main")
        phis = [i for i in main.cfg.instructions() if isinstance(i, Phi)]
        assert any(p.target.var.name == "s" for p in phis)
        assert any(p.target.var.name == "i" for p in phis)

    def test_straightline_has_no_phis(self):
        program = ssa_program(
            "      PROGRAM MAIN\n      X = 1\n      Y = X + 1\n      END\n"
        )
        main = program.procedure("main")
        assert not [i for i in main.cfg.instructions() if isinstance(i, Phi)]

    def test_entry_value_is_version_zero(self):
        program = ssa_program(
            "      SUBROUTINE S(A)\n      X = A + 1\n      END\n"
            "      PROGRAM MAIN\n      CALL S(1)\n      END\n"
        )
        s = program.procedure("s")
        uses = [
            u
            for i in s.cfg.instructions()
            for u in i.uses()
            if u.var.name == "a"
        ]
        assert any(u.version == 0 for u in uses)

    def test_call_may_define_versioned(self):
        program = ssa_program()
        foo = program.procedure("foo")
        for call in foo.call_sites():
            for definition in call.may_define:
                assert definition.version is not None

    def test_return_exit_uses_versioned(self):
        program = ssa_program()
        foo = program.procedure("foo")
        returns = [
            i for i in foo.cfg.instructions() if isinstance(i, Return)
        ]
        assert returns
        for ret in returns:
            assert ret.exit_uses
            for use in ret.exit_uses:
                assert use.version is not None


class TestDefinitionsMap:
    def test_ssa_definitions_complete(self):
        program = ssa_program()
        for procedure in program:
            definitions = ssa_definitions(procedure)
            for instruction in procedure.cfg.instructions():
                for definition in instruction.defs():
                    key = (definition.var, definition.version)
                    assert definitions[key] is instruction

    def test_version_zero_not_in_map(self):
        program = ssa_program()
        for procedure in program:
            definitions = ssa_definitions(procedure)
            assert not any(version == 0 for _var, version in definitions)


class TestVerifier:
    def test_detects_duplicate_definition(self):
        program = ssa_program(
            "      PROGRAM MAIN\n      X = 1\n      X = 2\n      END\n"
        )
        main = program.procedure("main")
        assigns = [
            i for i in main.cfg.instructions() if isinstance(i, Assign)
        ]
        assigns[1].target.version = assigns[0].target.version
        assert any(
            "multiple definitions" in problem for problem in verify_ssa(main)
        )

    def test_detects_unversioned_use(self):
        program = ssa_program(
            "      PROGRAM MAIN\n      X = 1\n      Y = X\n      END\n"
        )
        main = program.procedure("main")
        for instruction in main.cfg.instructions():
            for use in instruction.uses():
                use.version = None
        assert verify_ssa(main)


class TestGeneratedPrograms:
    @pytest.mark.parametrize("seed", range(12))
    def test_generated_programs_are_valid_ssa(self, seed):
        program = lower(generate_program(seed))
        prepare_program(program, AnalysisConfig())
        for procedure in program:
            assert verify_ssa(procedure) == [], procedure.name
