"""SSA destruction tests: transformed programs must run, and behave."""

import pytest

from repro.analysis.ssa_out import destruct_program, destruct_ssa
from repro.config import AnalysisConfig
from repro.frontend.parser import parse_source
from repro.frontend.source import SourceFile
from repro.ipcp.driver import analyze_program, prepare_program
from repro.ipcp.substitution import apply_substitution
from repro.ir.instructions import Phi
from repro.ir.interp import run_program
from repro.ir.lowering import lower_module
from repro.suite.generator import GeneratorConfig, generate_program

from tests.conftest import TRI_PROGRAM, lower


def fresh(source):
    return lower_module(parse_source(source), SourceFile("t.f", source))


class TestDestruction:
    def test_no_phis_remain(self):
        program = lower(TRI_PROGRAM)
        prepare_program(program, AnalysisConfig())
        destruct_program(program)
        for procedure in program:
            assert not any(
                isinstance(i, Phi) for i in procedure.cfg.instructions()
            )

    def test_versions_stripped(self):
        program = lower(TRI_PROGRAM)
        prepare_program(program, AnalysisConfig())
        destruct_program(program)
        for procedure in program:
            for instruction in procedure.cfg.instructions():
                assert all(u.version is None for u in instruction.uses())
                assert all(d.version is None for d in instruction.defs())

    def test_natural_phis_cost_no_copies(self):
        program = lower(TRI_PROGRAM)
        prepare_program(program, AnalysisConfig())
        assert destruct_program(program) == 0

    def test_roundtrip_behaviour(self):
        source = (
            "      PROGRAM MAIN\n      S = 0\n      DO I = 1, 5\n"
            "      S = S + I\n      ENDDO\n"
            "      IF (S .GT. 10) THEN\n      PRINT *, 'big', S\n"
            "      ELSE\n      PRINT *, 'small', S\n      ENDIF\n      END\n"
        )
        original = run_program(fresh(source))
        program = fresh(source)
        prepare_program(program, AnalysisConfig())
        destruct_program(program)
        assert run_program(program).output == original.output

    @pytest.mark.parametrize("seed", range(10))
    def test_roundtrip_generated_programs(self, seed):
        source = generate_program(seed, GeneratorConfig(procedures=4))
        inputs = [2, -1, 5] * 40
        original = run_program(fresh(source), inputs=inputs, fuel=3_000_000)
        program = fresh(source)
        prepare_program(program, AnalysisConfig())
        destruct_program(program)
        roundtrip = run_program(program, inputs=inputs, fuel=3_000_000)
        assert roundtrip.output == original.output


class TestAfterTransformations:
    def test_constant_phi_inputs_materialized(self):
        # apply_substitution can turn phi inputs into constants; the
        # destructor must materialize them with edge copies.
        source = (
            "      PROGRAM MAIN\n      READ *, C\n"
            "      IF (C .GT. 0) THEN\n      X = 7\n      ELSE\n      X = 7\n"
            "      ENDIF\n      PRINT *, X\n      END\n"
        )
        program = fresh(source)
        result = analyze_program(program, AnalysisConfig())
        apply_substitution(program, result.substitution)
        destruct_program(program)
        trace = run_program(program, inputs=[1])
        assert trace.output == ["7"]

    def test_complete_propagation_preserves_behaviour(self):
        # The strongest check: complete propagation folds branches and
        # deletes blocks; the mutated program must still behave.
        source = (
            "      PROGRAM MAIN\n      CALL D(1)\n      END\n"
            "      SUBROUTINE D(M)\n"
            "      IF (M .EQ. 1) THEN\n      CALL W(7)\n"
            "      ELSE\n      CALL W(9)\n      ENDIF\n      END\n"
            "      SUBROUTINE W(K)\n      PRINT *, K\n      END\n"
        )
        original = run_program(fresh(source))
        program = fresh(source)
        analyze_program(program, AnalysisConfig.complete_propagation())
        destruct_program(program)
        assert run_program(program).output == original.output == ["7"]

    @pytest.mark.parametrize("seed", range(10))
    def test_complete_propagation_roundtrip_generated(self, seed):
        source = generate_program(seed, GeneratorConfig(procedures=4))
        inputs = [3, 0, -4] * 40
        original = run_program(fresh(source), inputs=inputs, fuel=3_000_000)
        program = fresh(source)
        analyze_program(program, AnalysisConfig.complete_propagation())
        destruct_program(program)
        roundtrip = run_program(program, inputs=inputs, fuel=3_000_000)
        assert roundtrip.output == original.output
