"""Symbolic expression tests, including hypothesis properties for the
operator folder."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.expr import (
    ConstExpr,
    EntryExpr,
    OpExpr,
    UnknownExpr,
    fold_operator,
    make_binop,
    make_unop,
    substitute,
)
from repro.ir.symbols import Variable, VarKind


def entry(name="x"):
    return EntryExpr(Variable(name, VarKind.FORMAL))


class TestLeaves:
    def test_const_equality(self):
        assert ConstExpr(3) == ConstExpr(3)
        assert ConstExpr(3) != ConstExpr(4)

    def test_entry_identity_based(self):
        v = Variable("x", VarKind.FORMAL)
        assert EntryExpr(v) == EntryExpr(v)
        assert entry("x") != entry("x")  # different Variable objects

    def test_unknown_tag_equality(self):
        assert UnknownExpr(("a", 1)) == UnknownExpr(("a", 1))
        assert UnknownExpr(("a", 1)) != UnknownExpr(("a", 2))
        assert UnknownExpr() != UnknownExpr()  # fresh tags

    def test_support(self):
        e = entry()
        assert e.support() == frozenset((e.var,))
        assert ConstExpr(1).support() == frozenset()

    def test_has_unknown(self):
        assert UnknownExpr().has_unknown()
        assert not ConstExpr(1).has_unknown()
        assert make_binop("+", entry(), UnknownExpr()).has_unknown()


class TestConstructors:
    def test_constant_folding(self):
        assert make_binop("+", ConstExpr(2), ConstExpr(3)) == ConstExpr(5)
        assert make_unop("neg", ConstExpr(4)) == ConstExpr(-4)

    def test_division_by_zero_becomes_unknown(self):
        result = make_binop("/", ConstExpr(1), ConstExpr(0))
        assert isinstance(result, UnknownExpr)

    def test_identity_add_zero(self):
        e = entry()
        assert make_binop("+", e, ConstExpr(0)) is e
        assert make_binop("+", ConstExpr(0), e) is e

    def test_identity_mul_one(self):
        e = entry()
        assert make_binop("*", e, ConstExpr(1)) is e

    def test_mul_zero_absorbs(self):
        assert make_binop("*", entry(), ConstExpr(0)) == ConstExpr(0)

    def test_sub_self_is_zero(self):
        e = entry()
        assert make_binop("-", e, e) == ConstExpr(0)

    def test_sub_self_unknown_not_folded(self):
        u = UnknownExpr()
        # x - x folds only for unknown-free expressions; the same opaque
        # tag is still folded conservatively? No: unknowns are kept.
        result = make_binop("-", u, u)
        assert not isinstance(result, ConstExpr) or result.value == 0

    def test_commutative_canonicalization(self):
        a, b = entry("a"), entry("b")
        assert make_binop("+", a, b) == make_binop("+", b, a)
        assert make_binop("*", a, b) == make_binop("*", b, a)

    def test_noncommutative_order_kept(self):
        a, b = entry("a"), entry("b")
        assert make_binop("-", a, b) != make_binop("-", b, a)

    def test_double_negation(self):
        e = entry()
        assert make_unop("neg", make_unop("neg", e)) is e

    def test_div_by_one(self):
        e = entry()
        assert make_binop("/", e, ConstExpr(1)) is e


class TestEvaluation:
    def test_evaluate_full_env(self):
        v = Variable("x", VarKind.FORMAL)
        expr = make_binop("*", EntryExpr(v), ConstExpr(3))
        assert expr.evaluate({v: 5}) == 15

    def test_evaluate_missing_var(self):
        expr = make_binop("+", entry(), ConstExpr(1))
        assert expr.evaluate({}) is None

    def test_evaluate_unknown(self):
        expr = make_binop("+", UnknownExpr(), ConstExpr(1))
        assert expr.evaluate({}) is None

    def test_evaluate_division_by_zero(self):
        v = Variable("x", VarKind.FORMAL)
        expr = make_binop("/", ConstExpr(1), EntryExpr(v))
        assert expr.evaluate({v: 0}) is None


class TestSubstitute:
    def test_substitute_constant_folds(self):
        v = Variable("x", VarKind.FORMAL)
        expr = make_binop("+", EntryExpr(v), ConstExpr(1))
        assert substitute(expr, {v: ConstExpr(4)}) == ConstExpr(5)

    def test_substitute_entry_for_entry(self):
        v, w = Variable("x", VarKind.FORMAL), Variable("y", VarKind.FORMAL)
        expr = make_binop("*", EntryExpr(v), ConstExpr(2))
        result = substitute(expr, {v: EntryExpr(w)})
        assert result.support() == frozenset((w,))

    def test_unbound_vars_survive(self):
        v = Variable("x", VarKind.FORMAL)
        expr = EntryExpr(v)
        assert substitute(expr, {}) is expr

    def test_substitute_nested(self):
        v = Variable("x", VarKind.FORMAL)
        inner = make_binop("+", EntryExpr(v), ConstExpr(1))
        outer = make_binop("*", inner, ConstExpr(2))
        assert substitute(outer, {v: ConstExpr(3)}) == ConstExpr(8)


class TestFoldOperator:
    @pytest.mark.parametrize(
        "op,values,expected",
        [
            ("+", [2, 3], 5),
            ("-", [2, 3], -1),
            ("*", [4, 5], 20),
            ("/", [7, 2], 3),
            ("/", [-7, 2], -3),
            ("/", [7, -2], -3),
            ("/", [-7, -2], 3),
            ("mod", [7, 3], 1),
            ("mod", [-7, 3], -1),
            ("max", [2, 9], 9),
            ("min", [2, 9], 2),
            ("eq", [3, 3], 1),
            ("ne", [3, 3], 0),
            ("lt", [2, 3], 1),
            ("le", [3, 3], 1),
            ("gt", [2, 3], 0),
            ("ge", [2, 3], 0),
            ("and", [1, 0], 0),
            ("or", [1, 0], 1),
            ("neg", [5], -5),
            ("not", [0], 1),
            ("abs", [-4], 4),
        ],
    )
    def test_folds(self, op, values, expected):
        assert fold_operator(op, values) == expected

    def test_division_by_zero_is_none(self):
        assert fold_operator("/", [1, 0]) is None
        assert fold_operator("mod", [1, 0]) is None

    def test_unknown_operator_raises(self):
        with pytest.raises(ValueError):
            fold_operator("pow", [1, 2])

    @given(st.integers(-1000, 1000), st.integers(-1000, 1000))
    def test_division_matches_fortran_truncation(self, a, b):
        result = fold_operator("/", [a, b])
        if b == 0:
            assert result is None
        else:
            assert result == int(a / b)  # Python float division truncates toward 0

    @given(st.integers(-1000, 1000), st.integers(-1000, 1000))
    def test_mod_consistent_with_division(self, a, b):
        if b == 0:
            return
        quotient = fold_operator("/", [a, b])
        remainder = fold_operator("mod", [a, b])
        assert quotient * b + remainder == a

    @given(st.integers(-50, 50), st.integers(-50, 50))
    def test_constructor_folding_agrees_with_fold(self, a, b):
        for op in ("+", "-", "*", "max", "min"):
            assert make_binop(op, ConstExpr(a), ConstExpr(b)) == ConstExpr(
                fold_operator(op, [a, b])
            )
