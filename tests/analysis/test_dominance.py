"""Dominator tree and dominance frontier tests."""

from repro.analysis.dominance import compute_dominator_tree
from repro.ir.cfg import BasicBlock, ControlFlowGraph
from repro.ir.instructions import CondBranch, Const, Halt, Jump

from tests.conftest import lower


def diamond():
    entry = BasicBlock("entry")
    cfg = ControlFlowGraph(entry)
    left, right, join = (cfg.new_block(n) for n in ("left", "right", "join"))
    entry.append(CondBranch(Const(1), left, right))
    left.append(Jump(join))
    right.append(Jump(join))
    join.append(Halt())
    return cfg, entry, left, right, join


def loop():
    entry = BasicBlock("entry")
    cfg = ControlFlowGraph(entry)
    head, body, exit_block = (
        cfg.new_block(n) for n in ("head", "body", "exit")
    )
    entry.append(Jump(head))
    head.append(CondBranch(Const(1), body, exit_block))
    body.append(Jump(head))
    exit_block.append(Halt())
    return cfg, entry, head, body, exit_block


class TestImmediateDominators:
    def test_entry_has_no_idom(self):
        cfg, entry, *_ = diamond()
        tree = compute_dominator_tree(cfg)
        assert tree.idom[entry] is None

    def test_diamond_idoms(self):
        cfg, entry, left, right, join = diamond()
        tree = compute_dominator_tree(cfg)
        assert tree.idom[left] is entry
        assert tree.idom[right] is entry
        assert tree.idom[join] is entry

    def test_loop_idoms(self):
        cfg, entry, head, body, exit_block = loop()
        tree = compute_dominator_tree(cfg)
        assert tree.idom[head] is entry
        assert tree.idom[body] is head
        assert tree.idom[exit_block] is head

    def test_chain(self):
        entry = BasicBlock("a")
        cfg = ControlFlowGraph(entry)
        b = cfg.new_block("b")
        c = cfg.new_block("c")
        entry.append(Jump(b))
        b.append(Jump(c))
        c.append(Halt())
        tree = compute_dominator_tree(cfg)
        assert tree.idom[c] is b


class TestDominanceQueries:
    def test_dominates_reflexive(self):
        cfg, entry, *_ = diamond()
        tree = compute_dominator_tree(cfg)
        assert tree.dominates(entry, entry)

    def test_entry_dominates_all(self):
        cfg, entry, left, right, join = diamond()
        tree = compute_dominator_tree(cfg)
        for block in (left, right, join):
            assert tree.dominates(entry, block)

    def test_branch_arm_does_not_dominate_join(self):
        cfg, entry, left, right, join = diamond()
        tree = compute_dominator_tree(cfg)
        assert not tree.dominates(left, join)
        assert not tree.strictly_dominates(join, join)

    def test_preorder_parent_before_child(self):
        cfg, entry, head, body, exit_block = loop()
        tree = compute_dominator_tree(cfg)
        order = tree.preorder()
        assert order.index(head) < order.index(body)
        assert order[0] is entry
        assert len(order) == 4


class TestDominanceFrontiers:
    def test_diamond_frontier(self):
        cfg, entry, left, right, join = diamond()
        tree = compute_dominator_tree(cfg)
        assert tree.frontier[left] == {join}
        assert tree.frontier[right] == {join}
        assert tree.frontier[entry] == set()

    def test_loop_frontier_includes_head(self):
        cfg, entry, head, body, exit_block = loop()
        tree = compute_dominator_tree(cfg)
        assert head in tree.frontier[body]
        # The head is in its own frontier (it dominates a predecessor).
        assert head in tree.frontier[head]

    def test_real_program_frontiers_consistent(self):
        from tests.conftest import TRI_PROGRAM

        program = lower(TRI_PROGRAM)
        for procedure in program:
            tree = compute_dominator_tree(procedure.cfg)
            preds = procedure.cfg.predecessors()
            for block, frontier in tree.frontier.items():
                for f in frontier:
                    # Frontier definition: block dominates a pred of f
                    # but not f strictly.
                    assert any(
                        tree.dominates(block, p)
                        for p in preds[f]
                        if p in tree.idom
                    )
                    assert not tree.strictly_dominates(block, f)
