"""SCCP (sparse conditional constant propagation) tests."""

from repro.analysis.sccp import SCCPCallModel, run_sccp
from repro.config import AnalysisConfig
from repro.ipcp.driver import prepare_program
from repro.ir.instructions import Print
from repro.lattice import BOTTOM, TOP, const

from tests.conftest import lower


def sccp_of(text, proc="main", entry_values=None, call_model=None):
    program = lower(text)
    prepare_program(program, AnalysisConfig())
    procedure = program.procedure(proc)
    return procedure, run_sccp(procedure, entry_values, call_model)


def print_value(procedure, result, index=0):
    prints = [i for i in procedure.cfg.instructions() if isinstance(i, Print)]
    return result.operand_value(prints[0].operands()[index])


class TestConstants:
    def test_straightline_constant(self):
        p, r = sccp_of(
            "      PROGRAM MAIN\n      X = 2\n      Y = X * 3\n"
            "      PRINT *, Y\n      END\n"
        )
        assert print_value(p, r) == const(6)

    def test_read_is_bottom(self):
        p, r = sccp_of(
            "      PROGRAM MAIN\n      READ *, X\n      PRINT *, X\n      END\n"
        )
        assert print_value(p, r).is_bottom

    def test_equal_merge(self):
        p, r = sccp_of(
            "      PROGRAM MAIN\n      READ *, C\n"
            "      IF (C .GT. 0) THEN\n      X = 4\n      ELSE\n      X = 4\n"
            "      ENDIF\n      PRINT *, X\n      END\n"
        )
        assert print_value(p, r) == const(4)

    def test_unequal_merge_is_bottom(self):
        p, r = sccp_of(
            "      PROGRAM MAIN\n      READ *, C\n"
            "      IF (C .GT. 0) THEN\n      X = 4\n      ELSE\n      X = 5\n"
            "      ENDIF\n      PRINT *, X\n      END\n"
        )
        assert print_value(p, r).is_bottom

    def test_mul_by_zero_absorbs_bottom(self):
        p, r = sccp_of(
            "      PROGRAM MAIN\n      READ *, X\n      Y = X * 0\n"
            "      PRINT *, Y\n      END\n"
        )
        assert print_value(p, r) == const(0)

    def test_division_by_zero_is_bottom(self):
        p, r = sccp_of(
            "      PROGRAM MAIN\n      X = 1 / 0\n      PRINT *, X\n      END\n"
        )
        assert print_value(p, r).is_bottom


class TestConditionalPruning:
    BRANCHY = (
        "      PROGRAM MAIN\n      X = 1\n"
        "      IF (X .EQ. 1) THEN\n      Y = 10\n      ELSE\n      Y = 20\n"
        "      ENDIF\n      PRINT *, Y\n      END\n"
    )

    def test_constant_branch_prunes_dead_arm(self):
        p, r = sccp_of(self.BRANCHY)
        # The dead arm never executes, so Y is exactly 10 (plain meet
        # over both arms would give bottom).
        assert print_value(p, r) == const(10)

    def test_dead_blocks_reported(self):
        p, r = sccp_of(self.BRANCHY)
        assert r.dead_blocks()

    def test_loop_with_constant_bounds_executes(self):
        p, r = sccp_of(
            "      PROGRAM MAIN\n      S = 0\n      DO I = 1, 3\n"
            "      S = S + 1\n      ENDDO\n      PRINT *, S\n      END\n"
        )
        # Loop-carried: S is bottom, but everything is executable.
        assert print_value(p, r).is_bottom
        assert not r.dead_blocks()

    def test_never_executed_loop_body(self):
        p, r = sccp_of(
            "      PROGRAM MAIN\n      S = 5\n      DO I = 3, 1\n"
            "      S = 99\n      ENDDO\n      PRINT *, S\n      END\n"
        )
        # Zero-trip loop: body never executes; S stays 5.
        assert print_value(p, r) == const(5)


class TestEntryValues:
    SUB = (
        "      PROGRAM MAIN\n      CALL S(1)\n      END\n"
        "      SUBROUTINE S(A)\n      X = A * 10\n      PRINT *, X\n      END\n"
    )

    def test_entry_constant_flows(self):
        program = lower(self.SUB)
        prepare_program(program, AnalysisConfig())
        s = program.procedure("s")
        a = s.formals[0]
        result = run_sccp(s, {a: const(4)})
        assert print_value(s, result) == const(40)

    def test_default_entry_is_bottom(self):
        p, r = sccp_of(self.SUB, proc="s")
        assert print_value(p, r).is_bottom

    def test_top_entry_stays_optimistic(self):
        program = lower(self.SUB)
        prepare_program(program, AnalysisConfig())
        s = program.procedure("s")
        a = s.formals[0]
        result = run_sccp(s, {a: TOP})
        # TOP entry: X = TOP * 10 never lowers.
        assert print_value(s, result).is_top


class TestCallModel:
    CALLS = (
        "      PROGRAM MAIN\n      N = 5\n      CALL T(N)\n      PRINT *, N\n"
        "      END\n"
        "      SUBROUTINE T(K)\n      K = 9\n      END\n"
    )

    def test_default_model_kills_modified(self):
        p, r = sccp_of(self.CALLS)
        assert print_value(p, r).is_bottom

    def test_custom_model_supplies_value(self):
        class NineModel(SCCPCallModel):
            def modified_value(self, call, var, operand_value):
                return const(9)

        p, r = sccp_of(self.CALLS, call_model=NineModel())
        assert print_value(p, r) == const(9)

    def test_unmodified_vars_survive_with_mod(self):
        p, r = sccp_of(
            "      PROGRAM MAIN\n      N = 5\n      M = 0\n      CALL T(M)\n"
            "      PRINT *, N\n      END\n"
            "      SUBROUTINE T(K)\n      K = 9\n      END\n"
        )
        assert print_value(p, r) == const(5)

    def test_function_result_bottom_by_default(self):
        p, r = sccp_of(
            "      PROGRAM MAIN\n      X = F(1)\n      PRINT *, X\n      END\n"
            "      INTEGER FUNCTION F(Q)\n      F = 3\n      END\n"
        )
        assert print_value(p, r).is_bottom


class TestSubstitutionMetric:
    def test_counts_source_references_only(self):
        p, r = sccp_of(
            "      PROGRAM MAIN\n      X = 2\n      Y = X + X\n"
            "      PRINT *, Y\n      END\n"
        )
        uses = r.constant_source_references()
        # X twice and Y once: 3 source references with constant values.
        assert len(uses) == 3

    def test_dead_code_references_not_counted(self):
        p, r = sccp_of(
            "      PROGRAM MAIN\n      X = 1\n"
            "      IF (X .NE. 1) THEN\n      Y = X + 1\n      ENDIF\n"
            "      END\n"
        )
        counted_names = {u.var.name for u in r.constant_source_references()}
        # The X inside the dead arm must not be counted; the X in the
        # condition is.
        uses = r.constant_source_references()
        assert len(uses) == 1

    def test_nonconstant_references_not_counted(self):
        p, r = sccp_of(
            "      PROGRAM MAIN\n      READ *, X\n      Y = X + 1\n      END\n"
        )
        assert r.constant_source_references() == []
