"""Dead-code elimination tests."""

from repro.analysis.dce import eliminate_dead_code
from repro.analysis.sccp import run_sccp
from repro.analysis.ssa import verify_ssa
from repro.config import AnalysisConfig
from repro.ipcp.driver import prepare_program
from repro.ir.instructions import Assign, Call, CondBranch, Phi

from tests.conftest import lower


def prepared_proc(text, proc="main"):
    program = lower(text)
    prepare_program(program, AnalysisConfig())
    return program, program.procedure(proc)


BRANCHY = (
    "      PROGRAM MAIN\n      X = 1\n"
    "      IF (X .EQ. 1) THEN\n      Y = 10\n      ELSE\n      Y = 20\n"
    "      ENDIF\n      PRINT *, Y\n      END\n"
)


class TestBranchFolding:
    def test_constant_branch_folds(self):
        _, main = prepared_proc(BRANCHY)
        sccp = run_sccp(main)
        stats = eliminate_dead_code(main, sccp)
        assert stats.folded_branches == 1
        assert stats.removed_blocks >= 1
        assert not any(
            isinstance(i, CondBranch) for i in main.cfg.instructions()
        )

    def test_ssa_still_valid_after_dce(self):
        _, main = prepared_proc(BRANCHY)
        eliminate_dead_code(main, run_sccp(main))
        assert verify_ssa(main) == []

    def test_single_input_phi_becomes_copy(self):
        _, main = prepared_proc(BRANCHY)
        eliminate_dead_code(main, run_sccp(main), remove_dead_definitions=False)
        # The y phi at the join collapsed into a copy.
        phis = [i for i in main.cfg.instructions() if isinstance(i, Phi)]
        assert not [p for p in phis if p.target.var.name == "y"]

    def test_nonconstant_branch_untouched(self):
        _, main = prepared_proc(
            "      PROGRAM MAIN\n      READ *, X\n"
            "      IF (X .EQ. 1) THEN\n      Y = 10\n      ELSE\n      Y = 20\n"
            "      ENDIF\n      PRINT *, Y\n      END\n"
        )
        stats = eliminate_dead_code(main, run_sccp(main))
        assert stats.folded_branches == 0

    def test_without_sccp_no_folding(self):
        _, main = prepared_proc(BRANCHY)
        stats = eliminate_dead_code(main)
        assert stats.folded_branches == 0


class TestDeadDefinitions:
    def test_unused_pure_def_removed(self):
        _, main = prepared_proc(
            "      PROGRAM MAIN\n      X = 1\n      Y = 2\n      PRINT *, X\n"
            "      END\n"
        )
        stats = eliminate_dead_code(main)
        assert stats.removed_instructions >= 1
        names = [
            d.var.name
            for i in main.cfg.instructions()
            for d in i.defs()
        ]
        assert "y" not in names

    def test_used_def_kept(self):
        _, main = prepared_proc(
            "      PROGRAM MAIN\n      X = 1\n      PRINT *, X\n      END\n"
        )
        eliminate_dead_code(main)
        names = [
            d.var.name for i in main.cfg.instructions() for d in i.defs()
        ]
        assert "x" in names

    def test_chain_of_dead_defs_removed_iteratively(self):
        _, main = prepared_proc(
            "      PROGRAM MAIN\n      A = 1\n      B = A + 1\n      C = B + 1\n"
            "      END\n"
        )
        stats = eliminate_dead_code(main)
        assert stats.removed_instructions == 3

    def test_flag_disables_removal(self):
        _, main = prepared_proc(
            "      PROGRAM MAIN\n      A = 1\n      B = A + 1\n      END\n"
        )
        stats = eliminate_dead_code(main, remove_dead_definitions=False)
        assert stats.removed_instructions == 0

    def test_global_stores_kept_in_subroutine(self):
        # Assignments to globals are observable at RETURN (exit_uses):
        # never removed.
        program, s = prepared_proc(
            "      PROGRAM MAIN\n      COMMON /B/ G\n      CALL S\n"
            "      PRINT *, G\n      END\n"
            "      SUBROUTINE S\n      COMMON /B/ G\n      G = 5\n      END\n",
            proc="s",
        )
        eliminate_dead_code(s)
        names = [d.var.name for i in s.cfg.instructions() for d in i.defs()]
        assert "g" in names

    def test_calls_never_removed(self):
        _, main = prepared_proc(
            "      PROGRAM MAIN\n      X = F(1)\n      END\n"
            "      INTEGER FUNCTION F(Q)\n      F = Q\n      END\n"
        )
        eliminate_dead_code(main)
        assert any(isinstance(i, Call) for i in main.cfg.instructions())


class TestStats:
    def test_changed_flag(self):
        _, main = prepared_proc(
            "      PROGRAM MAIN\n      X = 1\n      PRINT *, X\n      END\n"
        )
        stats = eliminate_dead_code(main)
        assert not stats.changed
        _, main2 = prepared_proc(BRANCHY)
        stats2 = eliminate_dead_code(main2, run_sccp(main2))
        assert stats2.changed
