"""Value numbering tests."""

from repro.analysis.expr import ConstExpr, EntryExpr, OpExpr, UnknownExpr
from repro.analysis.value_numbering import ValueNumbering
from repro.config import AnalysisConfig
from repro.ipcp.driver import prepare_program
from repro.ir.instructions import Call, Print

from tests.conftest import lower


def numbered(text, proc="main"):
    program = lower(text)
    prepare_program(program, AnalysisConfig())
    procedure = program.procedure(proc)
    return program, procedure, ValueNumbering(procedure)


def print_operand_expr(procedure, numbering, index=0):
    prints = [
        i for i in procedure.cfg.instructions() if isinstance(i, Print)
    ]
    operands = prints[0].operands()
    return numbering.operand_expr(operands[index])


class TestStraightLine:
    def test_constant_propagates_through_copies(self):
        _, main, vn = numbered(
            "      PROGRAM MAIN\n      X = 5\n      Y = X\n      Z = Y\n"
            "      PRINT *, Z\n      END\n"
        )
        assert print_operand_expr(main, vn) == ConstExpr(5)

    def test_arithmetic_folds(self):
        _, main, vn = numbered(
            "      PROGRAM MAIN\n      X = 4\n      Y = X * 2 + 1\n"
            "      PRINT *, Y\n      END\n"
        )
        assert print_operand_expr(main, vn) == ConstExpr(9)

    def test_formal_entry_value(self):
        program, s, _ = numbered(
            "      PROGRAM MAIN\n      CALL S(1)\n      END\n"
            "      SUBROUTINE S(A)\n      PRINT *, A\n      END\n",
            proc="s",
        )
        vn = ValueNumbering(s)
        expr = print_operand_expr(s, vn)
        assert isinstance(expr, EntryExpr)
        assert expr.var.name == "a"

    def test_expression_over_formals(self):
        _, s, _ = numbered(
            "      PROGRAM MAIN\n      CALL S(1, 2)\n      END\n"
            "      SUBROUTINE S(A, B)\n      X = A + B * 2\n      PRINT *, X\n"
            "      END\n",
            proc="s",
        )
        vn = ValueNumbering(s)
        expr = print_operand_expr(s, vn)
        assert isinstance(expr, OpExpr)
        assert len(expr.support()) == 2

    def test_read_is_unknown(self):
        _, main, vn = numbered(
            "      PROGRAM MAIN\n      READ *, X\n      PRINT *, X\n      END\n"
        )
        assert isinstance(print_operand_expr(main, vn), UnknownExpr)

    def test_array_load_is_unknown(self):
        _, main, vn = numbered(
            "      PROGRAM MAIN\n      INTEGER A(5)\n      A(1) = 3\n"
            "      PRINT *, A(1)\n      END\n"
        )
        assert isinstance(print_operand_expr(main, vn), UnknownExpr)

    def test_copies_of_unknown_share_tag(self):
        _, main, vn = numbered(
            "      PROGRAM MAIN\n      READ *, X\n      Y = X\n      Z = X\n"
            "      PRINT *, Y, Z\n      END\n"
        )
        y = print_operand_expr(main, vn, 0)
        z = print_operand_expr(main, vn, 1)
        assert isinstance(y, UnknownExpr)
        assert y == z

    def test_undefined_local_is_stable_unknown(self):
        _, main, vn = numbered(
            "      PROGRAM MAIN\n      PRINT *, Q, Q\n      END\n"
        )
        assert print_operand_expr(main, vn, 0) == print_operand_expr(main, vn, 1)


class TestMerges:
    def test_equal_arms_merge_to_value(self):
        _, main, vn = numbered(
            "      PROGRAM MAIN\n      READ *, C\n"
            "      IF (C .GT. 0) THEN\n      X = 7\n      ELSE\n      X = 7\n"
            "      ENDIF\n      PRINT *, X\n      END\n"
        )
        assert print_operand_expr(main, vn) == ConstExpr(7)

    def test_unequal_arms_merge_to_unknown(self):
        _, main, vn = numbered(
            "      PROGRAM MAIN\n      READ *, C\n"
            "      IF (C .GT. 0) THEN\n      X = 7\n      ELSE\n      X = 8\n"
            "      ENDIF\n      PRINT *, X\n      END\n"
        )
        assert isinstance(print_operand_expr(main, vn), UnknownExpr)

    def test_loop_carried_value_is_unknown(self):
        _, main, vn = numbered(
            "      PROGRAM MAIN\n      S = 0\n      DO I = 1, 3\n"
            "      S = S + I\n      ENDDO\n      PRINT *, S\n      END\n"
        )
        assert isinstance(print_operand_expr(main, vn), UnknownExpr)

    def test_same_expression_both_arms(self):
        # Value numbering proves both arms compute A+1.
        _, s, _ = numbered(
            "      PROGRAM MAIN\n      CALL S(1, 2)\n      END\n"
            "      SUBROUTINE S(A, C)\n"
            "      IF (C .GT. 0) THEN\n      X = A + 1\n"
            "      ELSE\n      X = A + 1\n      ENDIF\n"
            "      PRINT *, X\n      END\n",
            proc="s",
        )
        vn = ValueNumbering(s)
        expr = print_operand_expr(s, vn)
        assert isinstance(expr, OpExpr)
        assert expr.op == "+"


class TestCallEffects:
    def test_default_semantics_kills_modified(self):
        _, main, vn = numbered(
            "      PROGRAM MAIN\n      N = 5\n      CALL S(N)\n"
            "      PRINT *, N\n      END\n"
            "      SUBROUTINE S(K)\n      K = K + 1\n      END\n"
        )
        # Default CallSemantics: the modified actual becomes unknown.
        assert isinstance(print_operand_expr(main, vn), UnknownExpr)

    def test_unmodified_var_survives_call(self):
        _, main, vn = numbered(
            "      PROGRAM MAIN\n      N = 5\n      M = 1\n      CALL S(M)\n"
            "      PRINT *, N\n      END\n"
            "      SUBROUTINE S(K)\n      K = K + 1\n      END\n"
        )
        # MOD knows only M is written: N's constant survives the call.
        assert print_operand_expr(main, vn) == ConstExpr(5)

    def test_constant_of_oracle(self):
        _, main, vn = numbered(
            "      PROGRAM MAIN\n      X = 6\n      PRINT *, X, Y\n      END\n"
        )
        prints = [i for i in main.cfg.instructions() if isinstance(i, Print)]
        x_op, y_op = prints[0].operands()
        assert vn.constant_of(x_op) == 6
        assert vn.constant_of(y_op) is None
