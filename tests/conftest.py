"""Shared fixtures and pytest wiring for the test suite.

The helpers themselves (``lower``, ``prepared``, ``TRI_PROGRAM``) live
in :mod:`repro.testkit` so the benchmark suite and the oracle tests
share one copy; they are re-exported here because many test modules
import them from ``tests.conftest``.

This file also registers the ``--update-goldens`` flag (regenerates the
golden-snapshot corpus instead of comparing against it) and auto-marks
tests by directory: ``tests/golden`` -> ``golden``, ``tests/oracle`` ->
``oracle``, ``tests/linkage`` -> ``linkage`` *and* ``tier1``,
``tests/opt`` -> ``opt`` *and* ``tier1``, everything else -> ``tier1``
(the fast gate: ``pytest -m tier1``).
"""

from __future__ import annotations

import pytest

from repro.testkit import TRI_PROGRAM, lower, prepared  # noqa: F401 — re-exports


@pytest.fixture(autouse=True)
def _fresh_memos():
    """Keep the engine's in-process memo caches test-local.

    A memoized ``AnalysisResult`` outliving one test would let a later
    test that monkeypatches analysis internals replay a result computed
    under the unpatched code (and vice versa)."""
    from repro.engine.memo import clear_memos

    clear_memos()
    yield
    clear_memos()


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="regenerate golden snapshots instead of asserting against them",
    )


def pytest_collection_modifyitems(config, items):
    for item in items:
        path = str(item.fspath)
        if "/tests/golden/" in path or path.endswith("tests/golden"):
            item.add_marker(pytest.mark.golden)
        elif "/tests/oracle/" in path:
            item.add_marker(pytest.mark.oracle)
        elif "/tests/linkage/" in path:
            # Linkage tests are part of the fast gate AND addressable
            # on their own (`pytest -m linkage`) for the CI job.
            item.add_marker(pytest.mark.linkage)
            item.add_marker(pytest.mark.tier1)
        elif "/tests/opt/" in path:
            # Same dual addressing for the optimization backend
            # (`pytest -m opt` drives the CI opt-smoke job).
            item.add_marker(pytest.mark.opt)
            item.add_marker(pytest.mark.tier1)
        else:
            item.add_marker(pytest.mark.tier1)


@pytest.fixture
def update_goldens(request) -> bool:
    return request.config.getoption("--update-goldens")


@pytest.fixture
def tri_program():
    return lower(TRI_PROGRAM)
