"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.frontend.parser import parse_source
from repro.frontend.source import SourceFile
from repro.ir.lowering import lower_module


def lower(text: str, filename: str = "test.f"):
    """Parse and lower MiniFortran text into a Program (not yet SSA)."""
    module = parse_source(text, filename)
    return lower_module(module, SourceFile(filename, text))


def prepared(text: str, config=None):
    """Lower + annotate + SSA, returning (program, callgraph, modref)."""
    from repro.config import AnalysisConfig
    from repro.ipcp.driver import prepare_program

    program = lower(text)
    callgraph, modref = prepare_program(program, config or AnalysisConfig())
    return program, callgraph, modref


#: A small three-procedure program exercising formals, globals, calls,
#: branches, and a loop — used by many structural tests.
TRI_PROGRAM = """
      PROGRAM MAIN
      INTEGER N
      COMMON /BLK/ G1, G2
      N = 100
      G1 = 7
      CALL FOO(N, 5)
      PRINT *, G2
      END

      SUBROUTINE FOO(X, Y)
      INTEGER X, Y, Z
      COMMON /BLK/ G1, G2
      Z = X + Y
      IF (Z .GT. 10) THEN
        G2 = Z
      ELSE
        G2 = 0
      ENDIF
      DO I = 1, Y
        Z = Z + 1
      ENDDO
      CALL BAR(Z)
      RETURN
      END

      SUBROUTINE BAR(A)
      INTEGER A
      COMMON /BLK/ G1, G2
      PRINT *, A + G1
      RETURN
      END
"""


@pytest.fixture
def tri_program():
    return lower(TRI_PROGRAM)
