"""The daemon's fault matrix, in-process: one :class:`ReproServer` per
test on a tmp unix socket, driven through the real client over the real
wire. Each test arms one fault and asserts the *contract*: well-formed
responses, sound (byte-identical) analysis content, and a degradation
that is visible — in ``degraded`` notes, error codes, or counters —
never silent."""

from __future__ import annotations

import os
import threading

import pytest

from repro import faults
from repro.config import AnalysisConfig
from repro.ipcp.driver import analyze_source
from repro.serve import (
    ReproClient,
    ReproServer,
    ServeConfig,
    ServeRequestError,
    wait_for_server,
)
from repro.serve.server import SocketBusyError
from repro.testkit import TRI_PROGRAM


@pytest.fixture
def workdir(tmp_path):
    program = tmp_path / "prog.f"
    program.write_text(TRI_PROGRAM)
    return tmp_path


def make_server(tmp_path, **overrides) -> ReproServer:
    settings = dict(
        socket_path=str(tmp_path / "repro.sock"),
        cache_dir=str(tmp_path / "cache"),
        drain_timeout_s=2.0,
    )
    settings.update(overrides)
    server = ReproServer(ServeConfig(**settings))
    server.start()
    assert wait_for_server(server.config.socket_path, timeout=5.0)
    return server


def serial_truth():
    result = analyze_source(TRI_PROGRAM, AnalysisConfig())
    return (
        result.constants.format_report(),
        result.constants.total_pairs(),
        result.substituted_constants,
        dict(result.substitution.per_procedure),
    )


def content_of(response):
    result = response["result"]
    return (
        result["constants_report"],
        result["total_pairs"],
        result["substituted"],
        result["per_procedure"],
    )


class TestServeBaseline:
    def test_cold_warm_and_explain(self, workdir):
        server = make_server(workdir)
        program = str(workdir / "prog.f")
        try:
            with ReproClient(server.config.socket_path) as client:
                cold = client.analyze(program)
                assert cold["ok"] and not cold["result"]["replayed"]
                assert content_of(cold) == serial_truth()
                assert cold["degraded"] == []
                warm = client.analyze(program)
                assert warm["result"]["replayed"]
                assert content_of(warm) == content_of(cold)
                explained = client.explain(program, "G2@bar")
                result = explained["result"]
                assert "explain" in result or "explain_error" in result
        finally:
            server.request_stop()
            assert server.finish() == 0
        assert not os.path.exists(server.config.socket_path)

    def test_invalidate_then_dirty_set_only_recompute(self, workdir):
        """The acceptance loop: ``invalidate`` evicts only the run-level
        replay entry, so the next ``analyze`` re-walks the engine where
        every clean procedure is served from the summary cache — the
        per-request ``recomputed_*`` counters must say *exactly* the
        dirty set was recomputed (for an unchanged file: nothing; after
        an edit: the invalidation report's dirty procedures)."""
        server = make_server(workdir)
        program = workdir / "prog.f"
        try:
            with ReproClient(server.config.socket_path) as client:
                client.analyze(str(program))
                evicted = client.invalidate(str(program))
                assert evicted["result"]["invalidated"]
                rerun = client.analyze(str(program))
                result = rerun["result"]
                assert not result["replayed"]
                counters = result["metrics"]
                for namespace in ("ret", "fwd", "sub"):
                    assert f"recomputed_{namespace}" not in counters, (
                        f"unchanged file recomputed {namespace} summaries: "
                        f"{counters}"
                    )
                assert counters.get("summary_cache_hits", 0) > 0
                assert not counters.get("summary_cache_misses")

                edited = TRI_PROGRAM.replace("N = 100", "N = 123")
                assert edited != TRI_PROGRAM
                program.write_text(edited)
                after_edit = client.analyze(str(program))
                report = after_edit["result"]["invalidation"]
                counters = after_edit["result"]["metrics"]
                assert report["edited"], "the edit must be classified"
                assert counters.get("recomputed_ret", 0) == \
                    report["dirty_count"], (
                        "recomputed ret summaries must equal the dirty "
                        f"set: {counters} vs {report}"
                    )
        finally:
            server.request_stop()
            server.finish()


class TestServeFaults:
    def test_deadline_expiry_is_a_clean_error(self, workdir):
        faults.install("delay-request:op=analyze,ms=300", export_env=False)
        server = make_server(workdir)
        program = str(workdir / "prog.f")
        try:
            with ReproClient(server.config.socket_path) as client:
                with pytest.raises(ServeRequestError) as excinfo:
                    client.analyze(program, deadline_ms=50)
                assert excinfo.value.code == "deadline_expired"
                faults.clear()
                recovered = client.analyze(program)
                assert recovered["ok"], (
                    "one expired request must not poison the dispatcher"
                )
                status = client.status()["result"]
                assert status["counters"].get("serve_deadline_expired") == 1
        finally:
            server.request_stop()
            server.finish()

    def test_overload_sheds_with_retry_hint(self, workdir):
        faults.install("delay-request:ms=400", export_env=False)
        server = make_server(workdir, queue_limit=1)
        program = str(workdir / "prog.f")
        outcomes = []
        lock = threading.Lock()

        def one_request():
            try:
                with ReproClient(server.config.socket_path) as client:
                    response = client.request("analyze", program)
                with lock:
                    outcomes.append(("ok", response))
            except ServeRequestError as err:
                with lock:
                    outcomes.append((err.code, err))

        threads = [threading.Thread(target=one_request) for _ in range(6)]
        try:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            codes = [kind for kind, _ in outcomes]
            assert codes.count("ok") >= 1
            assert "overloaded" in codes, f"nothing was shed: {codes}"
            shed = next(err for kind, err in outcomes
                        if kind == "overloaded")
            assert shed.retry_after is not None and shed.retry_after > 0
            faults.clear()
            with ReproClient(server.config.socket_path) as client:
                status = client.status()["result"]
                assert status["counters"].get("serve_shed", 0) >= 1
        finally:
            server.request_stop()
            server.finish()

    def test_drain_under_load(self, workdir):
        """SIGTERM-equivalent mid-stream: every in-flight client gets a
        well-formed answer — completed analyses as ``ok``, the rest as
        ``shutting_down`` — and the server still exits cleanly."""
        faults.install("delay-request:ms=250", export_env=False)
        server = make_server(workdir, queue_limit=32, drain_timeout_s=0.4)
        program = str(workdir / "prog.f")
        outcomes = []
        lock = threading.Lock()

        def one_request():
            try:
                with ReproClient(server.config.socket_path) as client:
                    response = client.request("analyze", program)
                with lock:
                    outcomes.append(("ok", response))
            except ServeRequestError as err:
                with lock:
                    outcomes.append((err.code, err))

        threads = [threading.Thread(target=one_request) for _ in range(6)]
        for thread in threads:
            thread.start()
        import time

        time.sleep(0.3)  # let the first request start, the rest queue
        server.request_stop(0)
        for thread in threads:
            thread.join(timeout=30)
        assert server.finish() == 0
        codes = sorted(kind for kind, _ in outcomes)
        assert len(codes) == 6, f"every client must be answered: {codes}"
        assert all(kind in ("ok", "shutting_down") for kind in codes), codes
        assert "shutting_down" in codes, (
            f"a 0.4s grace cannot drain six 250ms requests: {codes}"
        )
        completed = [resp for kind, resp in outcomes if kind == "ok"]
        for response in completed:
            assert content_of(response) == serial_truth()

    def test_new_requests_rejected_while_draining(self, workdir):
        server = make_server(workdir, drain_timeout_s=1.0)
        program = str(workdir / "prog.f")
        client = ReproClient(server.config.socket_path)
        try:
            server.request_stop(0)
            with pytest.raises(ServeRequestError) as excinfo:
                client.request("analyze", program)
            assert excinfo.value.code == "shutting_down"
        finally:
            client.close()
            server.finish()

    def test_corrupt_cache_recomputes_soundly(self, workdir):
        """Poisoned summary cache: the daemon quarantines on read and
        recomputes — same analysis content, visible counter."""
        faults.install("truncate-cache", export_env=False)
        server = make_server(workdir)
        program = str(workdir / "prog.f")
        try:
            with ReproClient(server.config.socket_path) as client:
                first = client.analyze(program)  # every store torn
                faults.clear()
                second = client.analyze(program)
                assert not second["result"]["replayed"], (
                    "the torn run entry must quarantine, not replay"
                )
                assert content_of(second) == content_of(first)
                assert content_of(second) == serial_truth()
                status = client.status()["result"]
                assert status["cache"]["quarantined"] > 0
                assert status["counters"].get("cache_quarantined", 0) > 0
        finally:
            server.request_stop()
            server.finish()

    def test_killed_workers_degrade_but_answer_identically(self, workdir):
        """SIGKILLed pool workers twice over: the daemon's engine must
        demote to in-process serial, say so in ``degraded``, and still
        return byte-identical analysis content — and the daemon itself
        must survive (the fault guard never kills the host)."""
        faults.install("kill-worker:stage=ret")
        server = make_server(workdir, jobs=2)
        program = str(workdir / "prog.f")
        try:
            with ReproClient(server.config.socket_path) as client:
                response = client.analyze(program)
                assert response["ok"]
                assert content_of(response) == serial_truth()
                assert any("serial" in note for note in response["degraded"])
                faults.clear()
                status = client.status()["result"]
                assert status["pool_demoted"] is True
                again = client.analyze(program)
                assert content_of(again) == serial_truth()
        finally:
            server.request_stop()
            server.finish()


class TestServeProtocolEdges:
    def test_malformed_frame_gets_bad_request(self, workdir):
        import socket as socketlib

        server = make_server(workdir)
        try:
            raw = socketlib.socket(socketlib.AF_UNIX, socketlib.SOCK_STREAM)
            raw.settimeout(5)
            raw.connect(server.config.socket_path)
            stream = raw.makefile("rb")
            import json

            raw.sendall(b"this is not json\n")
            error = json.loads(stream.readline())
            assert error["ok"] is False
            assert error["error"]["code"] == "bad_request"
            raw.sendall(b'{"op": "launch-missiles"}\n')
            error = json.loads(stream.readline())
            assert error["error"]["code"] == "bad_request"
            # The connection survives garbage: a real request still works.
            raw.sendall(b'{"op": "status", "id": 9}\n')
            response = json.loads(stream.readline())
            assert response["ok"] is True and response["id"] == 9
            raw.close()
        finally:
            server.request_stop()
            server.finish()

    def test_unreadable_file_is_analysis_level_error(self, workdir):
        server = make_server(workdir)
        try:
            with ReproClient(server.config.socket_path) as client:
                response = client.analyze(str(workdir / "missing.f"))
                assert response["ok"], (
                    "an unreadable input is the analysis' outcome, not a "
                    "protocol failure"
                )
                assert response["result"]["status"] == "error"
                assert response["result"]["error"]
        finally:
            server.request_stop()
            server.finish()

    def test_live_socket_is_not_stolen(self, workdir):
        server = make_server(workdir)
        try:
            with pytest.raises(SocketBusyError):
                ReproServer(
                    ServeConfig(socket_path=server.config.socket_path)
                ).start()
        finally:
            server.request_stop()
            server.finish()

    def test_stale_socket_is_reclaimed(self, workdir):
        first = make_server(workdir)
        first.request_stop()
        first.finish()
        # Simulate a crashed daemon's leftover socket file.
        import socket as socketlib

        leftover = socketlib.socket(socketlib.AF_UNIX, socketlib.SOCK_STREAM)
        leftover.bind(first.config.socket_path)
        leftover.close()
        assert os.path.exists(first.config.socket_path)
        second = make_server(workdir)
        try:
            with ReproClient(second.config.socket_path) as client:
                assert client.status()["ok"]
        finally:
            second.request_stop()
            second.finish()

    def test_shutdown_op_drains_and_exits_zero(self, workdir):
        server = make_server(workdir)
        with ReproClient(server.config.socket_path) as client:
            response = client.shutdown()
            assert response["result"]["stopping"] is True
        assert server.wait(timeout=5)
        assert server.finish() == 0
