"""Shared wiring for the robustness (fault-injection) suite.

Every test here runs with a clean fault plan on both sides: a leaked
``REPRO_FAULTS`` environment variable or module-level plan would arm
faults in *later* tests (or in pool workers they spawn), turning one
test's chaos into another's flake.
"""

from __future__ import annotations

import pytest

from repro import faults


@pytest.fixture(autouse=True)
def _no_leaked_faults():
    faults.clear()
    yield
    faults.clear()
