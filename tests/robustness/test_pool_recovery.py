"""Worker-crash recovery: a SIGKILLed pool worker must cost at most a
rebuild (first crash) or a demotion to in-process serial execution
(second crash) — never a wrong answer, never a dead host process.

The two crash cadences are driven by the two fault trigger modes:

- ``flag=PATH`` — fire-once-globally: exactly one worker dies, the
  rebuilt pool finds the fault disarmed, the retry succeeds;
- no flag — every worker of every pool dies, so the rebuild breaks
  too and the engine/batch must fall back to serial.
"""

from __future__ import annotations

from repro import faults
from repro.config import AnalysisConfig
from repro.engine import Engine
from repro.engine.batch import run_batch
from repro.ipcp.driver import analyze_source
from repro.obs import metrics
from repro.testkit import TRI_PROGRAM


def fingerprint(text, engine=None):
    result = analyze_source(text, AnalysisConfig(), engine=engine)
    return (
        result.constants.format_report(),
        dict(result.substitution.per_procedure),
        result.transformed_source(),
    ), result


class TestEnginePoolRecovery:
    def test_single_crash_rebuilds_and_retries(self, tmp_path):
        serial, _ = fingerprint(TRI_PROGRAM)
        flag = tmp_path / "armed"
        flag.write_text("")
        faults.install(f"kill-worker:stage=ret,flag={flag}")
        base = metrics.snapshot()
        with Engine(jobs=2, executor="process") as engine:
            recovered, result = fingerprint(TRI_PROGRAM, engine=engine)
            assert not engine.pool_demoted
        delta = metrics.delta_since(base)["counters"]
        assert recovered == serial
        assert delta.get("engine_pool_broken") == 1
        assert delta.get("engine_pool_rebuilds") == 1
        assert "engine_pool_demotions" not in delta
        assert result.resilience.ok

    def test_double_crash_demotes_to_serial(self):
        serial, _ = fingerprint(TRI_PROGRAM)
        faults.install("kill-worker:stage=ret")
        base = metrics.snapshot()
        with Engine(jobs=2, executor="process") as engine:
            degraded, result = fingerprint(TRI_PROGRAM, engine=engine)
            assert engine.pool_demoted
            assert engine.jobs == 1
        delta = metrics.delta_since(base)["counters"]
        assert degraded == serial, "serial fallback must be byte-identical"
        assert delta.get("engine_pool_demotions") == 1
        components = [d.component for d in result.resilience.demotions]
        assert "engine_pool" in components, (
            "the demotion must be visible in the resilience report"
        )

    def test_demoted_engine_keeps_serving(self):
        """After demotion the engine is a plain serial engine: later
        runs still answer (the daemon reuses one engine forever)."""
        faults.install("kill-worker:stage=ret")
        with Engine(jobs=2, executor="process") as engine:
            first, _ = fingerprint(TRI_PROGRAM, engine=engine)
            assert engine.pool_demoted
            faults.clear()
            second, result = fingerprint(TRI_PROGRAM, engine=engine)
        assert second == first
        assert result.resilience.ok, (
            "post-demotion runs are plain serial runs, not degraded ones"
        )


class TestBatchPoolRecovery:
    def _write_suite(self, tmp_path, count=3):
        paths = []
        for index in range(count):
            path = tmp_path / f"prog{index}.f"
            path.write_text(TRI_PROGRAM)
            paths.append(str(path))
        return paths

    def test_single_crash_rebuilds_and_finishes(self, tmp_path):
        paths = self._write_suite(tmp_path)
        reference = run_batch(paths, AnalysisConfig(), jobs=1)
        flag = tmp_path / "armed"
        flag.write_text("")
        faults.install(f"kill-worker:stage=batch,flag={flag}")
        base = metrics.snapshot()
        result = run_batch(paths, AnalysisConfig(), jobs=2)
        delta = metrics.delta_since(base)["counters"]
        assert delta.get("batch_pool_broken") == 1
        assert delta.get("batch_pool_rebuilds") == 1
        assert result.notes == []
        assert [o.path for o in result.files] == paths
        for ours, ref in zip(result.files, reference.files):
            assert (ours.status, ours.total_pairs, ours.substituted) == (
                ref.status, ref.total_pairs, ref.substituted)

    def test_double_crash_degrades_to_serial(self, tmp_path):
        paths = self._write_suite(tmp_path)
        reference = run_batch(paths, AnalysisConfig(), jobs=1)
        faults.install("kill-worker:stage=batch")
        base = metrics.snapshot()
        result = run_batch(paths, AnalysisConfig(), jobs=2)
        delta = metrics.delta_since(base)["counters"]
        assert delta.get("batch_pool_demotions") == 1
        assert result.notes and "serial" in result.notes[0], (
            "degraded completion must be announced, not silent"
        )
        assert result.ok
        for ours, ref in zip(result.files, reference.files):
            assert (ours.status, ours.total_pairs, ours.substituted) == (
                ref.status, ref.total_pairs, ref.substituted)
