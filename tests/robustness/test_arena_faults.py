"""Arena transport under injected corruption and vanishing segments:
every fault quarantines the arena for the run and re-dispatches the
wave over the pool's pickle channel — visibly (``arena_fallbacks``,
read/attach failure counters) but never as a wrong or failed
analysis."""

from __future__ import annotations

import os

import pytest

from repro import faults
from repro.config import AnalysisConfig
from repro.engine import Engine
from repro.engine.arena import ArenaAttachError, ArenaReadError, SummaryArena
from repro.ipcp.driver import analyze_source
from repro.obs import metrics
from repro.suite.generator import GeneratorConfig, generate_case

pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="pool workers fork on this path"
)

GENERATOR = GeneratorConfig(procedures=8, max_statements_per_procedure=8)


def fingerprint_run(text, engine=None):
    result = analyze_source(text, AnalysisConfig(), engine=engine)
    return (
        result.constants.format_report(),
        dict(result.substitution.per_procedure),
        result.transformed_source(),
    )


class TestFaultSpecs:
    def test_points_registered(self):
        assert "corrupt-arena" in faults.POINTS
        assert "unlink-arena" in faults.POINTS

    def test_specs_parse(self):
        plan = faults.parse_plan(
            "corrupt-arena:namespace=ret;unlink-arena:nth=1"
        )
        assert [spec.point for spec in plan] == [
            "corrupt-arena", "unlink-arena",
        ]


class TestArenaUnitFaults:
    def test_corrupt_arena_rots_exactly_the_matched_record(self, tmp_path):
        arena = SummaryArena.create(capacity=64 * 1024,
                                    directory=str(tmp_path))
        try:
            faults.install("corrupt-arena:nth=1", export_env=False)
            arena.append("ret", "rotted", {"x": 1})
            faults.clear()
            arena.append("ret", "clean", {"x": 2})
            with pytest.raises(ArenaReadError):
                arena.read(0)
            assert arena.read_payload(1) == {"x": 2}
        finally:
            arena.destroy()

    def test_unlink_arena_fires_at_attach(self, tmp_path):
        arena = SummaryArena.create(capacity=4096,
                                    directory=str(tmp_path))
        path = arena.path
        faults.install("unlink-arena:nth=1", export_env=False)
        with pytest.raises(ArenaAttachError, match="unlinked"):
            SummaryArena.attach_cached(path)
        assert not os.path.exists(path)
        arena.close()


@pytest.mark.parametrize(
    "spec",
    [
        "corrupt-arena:nth=1",
        "corrupt-arena:namespace=ret",
        "corrupt-arena:namespace=sub",
        "unlink-arena:nth=1",
    ],
)
def test_engine_fault_falls_back_byte_identically(spec):
    """The whole matrix: whatever the arena fault, the engine must
    quarantine the arena, finish over the pickle channel, and produce
    exactly the serial result — degraded transport, not degraded
    analysis."""
    text = generate_case(5, GENERATOR).source
    serial = fingerprint_run(text)

    faults.install(spec)  # export_env so forked workers also see it
    base = metrics.snapshot()
    try:
        with Engine(jobs=2, executor="process") as engine:
            chaotic = fingerprint_run(text, engine=engine)
    finally:
        faults.clear()

    assert chaotic == serial, f"{spec} changed the analysis result"
    delta = metrics.delta_since(base)["counters"]
    assert delta.get("arena_fallbacks", 0) == 1, (
        f"{spec} should disable the arena exactly once for the run"
    )
    # The fallback wave re-shipped payload over the pickle channel.
    assert delta.get("engine_pickle_payload_entries", 0) > 0


def test_fault_free_control_run_never_falls_back():
    text = generate_case(5, GENERATOR).source
    serial = fingerprint_run(text)
    base = metrics.snapshot()
    with Engine(jobs=2, executor="process") as engine:
        assert fingerprint_run(text, engine=engine) == serial
    delta = metrics.delta_since(base)["counters"]
    assert delta.get("arena_fallbacks", 0) == 0
    assert delta.get("engine_pickle_payload_entries", 0) == 0
