"""Cache integrity under injected corruption: a torn, rotted, or
unwritable entry must degrade to a recomputation — visibly (quarantine
stats, ``.corrupt`` sidecars, metrics) but never to a wrong or failed
analysis."""

from __future__ import annotations

import glob
import json
import os

from repro import faults
from repro.config import AnalysisConfig
from repro.engine import Engine
from repro.engine.cache import SummaryCache, payload_digest
from repro.ipcp.driver import analyze_source
from repro.obs import metrics
from repro.testkit import TRI_PROGRAM


def fingerprint(text, engine=None):
    result = analyze_source(text, AnalysisConfig(), engine=engine)
    return (
        result.constants.format_report(),
        dict(result.substitution.per_procedure),
        result.transformed_source(),
    )


def corrupt_sidecars(root):
    return glob.glob(os.path.join(root, "**", "*.corrupt"), recursive=True)


class TestSummaryCacheUnit:
    def test_roundtrip_verifies(self, tmp_path):
        cache = SummaryCache(root=str(tmp_path))
        cache.put("ret", "a" * 16, {"x": 1})
        assert cache.get("ret", "a" * 16) == {"x": 1}
        assert cache.stats.hits == 1
        assert cache.stats.quarantined == 0

    def test_digest_mismatch_quarantines(self, tmp_path):
        cache = SummaryCache(root=str(tmp_path))
        cache.put("ret", "b" * 16, {"x": 1})
        [path] = glob.glob(
            os.path.join(str(tmp_path), "**", "*.json"), recursive=True
        )
        wrapper = json.loads(open(path).read())
        wrapper["body"] = {"x": 2}  # rot the body, keep the old digest
        open(path, "w").write(json.dumps(wrapper))
        base = metrics.snapshot()
        assert cache.get("ret", "b" * 16) is None
        assert cache.stats.quarantined == 1
        assert os.path.exists(path + ".corrupt")
        assert not os.path.exists(path)
        delta = metrics.delta_since(base)["counters"]
        assert delta.get("cache_quarantined") == 1

    def test_truncated_entry_quarantines(self, tmp_path):
        cache = SummaryCache(root=str(tmp_path))
        faults.install("truncate-cache", export_env=False)
        cache.put("ret", "c" * 16, {"x": 1})
        faults.clear()
        assert cache.get("ret", "c" * 16) is None
        assert cache.stats.quarantined == 1
        assert corrupt_sidecars(str(tmp_path))

    def test_missing_wrapper_quarantines(self, tmp_path):
        cache = SummaryCache(root=str(tmp_path))
        cache.put("ret", "d" * 16, {"x": 1})
        [path] = glob.glob(
            os.path.join(str(tmp_path), "**", "*.json"), recursive=True
        )
        open(path, "w").write(json.dumps({"x": 1}))  # pre-checksum layout
        assert cache.get("ret", "d" * 16) is None
        assert cache.stats.quarantined == 1

    def test_injected_write_failure_degrades_to_no_store(self, tmp_path):
        cache = SummaryCache(root=str(tmp_path))
        faults.install("fail-write", export_env=False)
        base = metrics.snapshot()
        cache.put("ret", "e" * 16, {"x": 1})
        faults.clear()
        assert cache.stats.store_failures == 1
        assert cache.stats.stores == 0
        assert cache.get("ret", "e" * 16) is None
        delta = metrics.delta_since(base)["counters"]
        assert delta.get("cache_store_failures") == 1

    def test_digest_is_insertion_order_free(self):
        assert payload_digest({"a": 1, "b": 2}) == payload_digest(
            {"b": 2, "a": 1}
        )


class TestEngineUnderCacheFaults:
    def test_torn_entries_recompute_identically(self, tmp_path):
        """Every summary written torn → second run quarantines them all
        and recomputes; both runs must match the cacheless truth."""
        truth = fingerprint(TRI_PROGRAM)
        faults.install("truncate-cache", export_env=False)
        with Engine(jobs=1, cache_dir=str(tmp_path)) as engine:
            assert fingerprint(TRI_PROGRAM, engine=engine) == truth
        faults.clear()
        base = metrics.snapshot()
        with Engine(jobs=1, cache_dir=str(tmp_path)) as engine:
            assert fingerprint(TRI_PROGRAM, engine=engine) == truth
            assert engine.cache.stats.quarantined > 0
        delta = metrics.delta_since(base)["counters"]
        assert delta.get("cache_quarantined", 0) > 0
        assert corrupt_sidecars(str(tmp_path))

    def test_rotted_digest_recomputes_identically(self, tmp_path):
        truth = fingerprint(TRI_PROGRAM)
        faults.install("corrupt-cache:namespace=ret", export_env=False)
        with Engine(jobs=1, cache_dir=str(tmp_path)) as engine:
            assert fingerprint(TRI_PROGRAM, engine=engine) == truth
        faults.clear()
        with Engine(jobs=1, cache_dir=str(tmp_path)) as engine:
            assert fingerprint(TRI_PROGRAM, engine=engine) == truth
            assert engine.cache.stats.quarantined > 0

    def test_unwritable_cache_still_analyzes(self, tmp_path):
        truth = fingerprint(TRI_PROGRAM)
        faults.install("fail-write", export_env=False)
        with Engine(jobs=1, cache_dir=str(tmp_path)) as engine:
            assert fingerprint(TRI_PROGRAM, engine=engine) == truth
            assert engine.cache.stats.store_failures > 0
            assert engine.cache.stats.stores == 0
