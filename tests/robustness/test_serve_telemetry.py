"""Request-scoped telemetry under the daemon: correlated structured
logs, stitched traces, the ``obs`` protocol op, slow-request capture,
and metrics-scope isolation across concurrent requests."""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs.log import validate_log_records
from repro.obs.trace import validate_chrome_trace, validate_stitched_trace
from repro.serve import (
    ReproClient,
    ReproServer,
    ServeConfig,
    wait_for_server,
)
from repro.testkit import TRI_PROGRAM


@pytest.fixture
def workdir(tmp_path):
    program = tmp_path / "prog.f"
    program.write_text(TRI_PROGRAM)
    return tmp_path


def make_server(tmp_path, **overrides) -> ReproServer:
    settings = dict(
        socket_path=str(tmp_path / "repro.sock"),
        cache_dir=str(tmp_path / "cache"),
        drain_timeout_s=2.0,
    )
    settings.update(overrides)
    server = ReproServer(ServeConfig(**settings))
    server.start()
    assert wait_for_server(server.config.socket_path, timeout=5.0)
    return server


def run_and_stop(server, requests):
    """Drive ``requests(client)`` against ``server``, shut down, and
    finish the drain (which flushes log/trace/metrics artifacts)."""
    with ReproClient(server.config.socket_path) as client:
        outcome = requests(client)
        client.shutdown()
    server.wait(timeout=10.0)
    server.finish()
    return outcome


class TestObsOp:
    def test_latency_and_ring_payload(self, workdir):
        server = make_server(workdir, obs_window=4)
        program = str(workdir / "prog.f")

        def drive(client):
            client.analyze(program)
            client.analyze(program)
            return client.obs()["result"]

        result = run_and_stop(server, drive)
        assert result["window"] == 4
        assert result["requests_seen"] == 2
        assert result["slow_threshold_s"] is None
        assert result["slow_requests"] == 0
        latency = result["latency"]
        for name in (
            "serve_queue_seconds",
            "serve_request_seconds",
            "serve_stage_queue_seconds",
            "serve_stage_parse_seconds",
            "serve_stage_solve_seconds",
            "serve_stage_opt_seconds",
            "serve_stage_render_seconds",
        ):
            stats = latency[name]
            assert set(stats) == {"count", "sum", "p50", "p95", "p99"}
        stats = latency["serve_request_seconds"]
        assert stats["count"] == 2
        assert stats["p50"] <= stats["p95"] <= stats["p99"]
        entries = result["recent"]
        assert [e["op"] for e in entries] == ["analyze", "analyze"]
        first = entries[0]
        assert first["request_id"] == "r000001"
        assert first["status"] == "ok"
        for bucket in ("queue", "parse", "solve", "opt", "render"):
            assert f"{bucket}_ms" in first
        assert first["total_ms"] >= 0.0

    def test_ring_window_and_limit(self, workdir):
        server = make_server(workdir, obs_window=2)
        program = str(workdir / "prog.f")

        def drive(client):
            for _ in range(4):
                client.analyze(program)
            full = client.obs()["result"]
            limited = client.obs(limit=1)["result"]
            return full, limited

        full, limited = run_and_stop(server, drive)
        assert full["requests_seen"] >= 4
        assert len(full["recent"]) == 2  # window caps retention
        assert len(limited["recent"]) == 1
        assert limited["recent"][0]["request_id"] > full["recent"][0][
            "request_id"
        ]


class TestLogArtifact:
    def test_every_record_correlated_and_schema_clean(self, workdir):
        log_path = workdir / "serve.log"
        server = make_server(workdir, log_path=str(log_path))
        program = str(workdir / "prog.f")
        run_and_stop(
            server, lambda client: (client.analyze(program),
                                    client.analyze(program))
        )
        lines = log_path.read_text().splitlines()
        assert validate_log_records(lines) == []
        records = [json.loads(line) for line in lines]
        assert all(record["request_id"] not in ("", "-")
                   for record in records)
        events = [record["event"] for record in records]
        assert events[0] == "server.start"
        assert events[-1] == "server.stop"
        assert events.count("request.start") == events.count("request.end")
        assert events.count("request.start") >= 2
        # request records carry the admission-assigned id; lifecycle
        # records carry the session id
        starts = [r for r in records if r["event"] == "request.start"]
        assert [r["request_id"] for r in starts][:2] == [
            "r000001", "r000002",
        ]
        ends = {r["request_id"]: r for r in records
                if r["event"] == "request.end"}
        assert ends["r000001"]["status"] == "ok"
        assert ends["r000002"]["replayed"] is True
        for bucket in ("queue", "parse", "solve", "opt", "render"):
            assert f"{bucket}_ms" in ends["r000001"]
        (stop,) = [r for r in records if r["event"] == "server.stop"]
        assert stop["request_id"] == "server"

    def test_slow_request_capture(self, workdir):
        log_path = workdir / "serve.log"
        server = make_server(
            workdir, log_path=str(log_path), slow_request_s=1e-7
        )
        program = str(workdir / "prog.f")

        def drive(client):
            client.analyze(program)
            return client.obs()["result"]

        result = run_and_stop(server, drive)
        assert result["slow_requests"] >= 1
        assert result["slow_threshold_s"] == 1e-7
        records = [json.loads(line)
                   for line in log_path.read_text().splitlines()]
        slow = [r for r in records if r["event"] == "request.slow"]
        assert slow, "expected request.slow records"
        first = slow[0]
        assert first["level"] == "warn"
        assert first["request_id"] == "r000001"
        assert first["threshold_ms"] == 0.0  # rounds below 1us
        assert result["slow_threshold_s"] == 1e-7
        assert "stages" in first and "total_ms" in first

    def test_log_level_filters(self, workdir):
        log_path = workdir / "serve.log"
        server = make_server(
            workdir, log_path=str(log_path), log_level="error",
            slow_request_s=1e-9,
        )
        program = str(workdir / "prog.f")
        run_and_stop(server, lambda client: client.analyze(program))
        records = [json.loads(line)
                   for line in log_path.read_text().splitlines()]
        # info lifecycle records and warn slow records are all filtered
        assert records == []


class TestTraceArtifact:
    def test_stitched_trace_with_request_roots(self, workdir):
        trace_path = workdir / "serve.trace.json"
        server = make_server(workdir, trace_path=str(trace_path))
        program = str(workdir / "prog.f")
        run_and_stop(
            server, lambda client: (client.analyze(program),
                                    client.analyze(program))
        )
        payload = json.loads(trace_path.read_text())
        assert validate_chrome_trace(payload) == []
        assert validate_stitched_trace(payload) == []
        events = payload["traceEvents"]
        roots = [e for e in events
                 if e.get("ph") == "X" and e["name"] == "serve.request"]
        assert len(roots) >= 2
        root_ids = {e["args"]["request_id"] for e in roots}
        assert {"r000001", "r000002"} <= root_ids
        starts = [e for e in events if e.get("ph") == "s"]
        finishes = [e for e in events if e.get("ph") == "f"]
        start_requests = {e["args"]["request_id"] for e in starts}
        assert {"r000001", "r000002"} <= start_requests
        assert {e["id"] for e in finishes} <= {e["id"] for e in starts}


class TestScopeIsolation:
    """Concurrent requests must see non-overlapping per-request metric
    deltas: the dispatcher scopes the registry per request, so handler
    threads and neighbors can never leak counters into a delta."""

    def test_sequential_deltas_do_not_accumulate(self, workdir):
        server = make_server(workdir)
        program = str(workdir / "prog.f")

        def drive(client):
            cold = client.analyze(program)["result"]["metrics"]
            warm = client.analyze(program)["result"]["metrics"]
            return cold, warm

        cold, warm = run_and_stop(server, drive)
        assert cold.get("parses", 0) == 1
        assert cold.get("run_cache_misses", 0) == 1
        # the warm replay did no fresh analysis and its delta says so
        assert warm.get("parses", 0) == 0
        assert warm.get("run_cache_hits", 0) == 1
        assert warm.get("serve_replayed", 0) == 1
        # admission-side counters never appear in request deltas
        for delta in (cold, warm):
            assert "serve_requests" not in delta
            assert "serve_shed" not in delta

    def test_concurrent_deltas_are_disjoint(self, tmp_path):
        # Distinct programs so no request can replay another's work;
        # each delta must account for exactly one analysis.
        programs = []
        for index in range(4):
            path = tmp_path / f"p{index}.f"
            path.write_text(
                TRI_PROGRAM.replace("PROGRAM main", "PROGRAM main")
                + f"\nC variant {index}\n"
            )
            programs.append(str(path))
        server = make_server(tmp_path, jobs=2)
        deltas = [None] * len(programs)
        errors = []

        def worker(index):
            try:
                with ReproClient(server.config.socket_path) as client:
                    response = client.analyze(programs[index])
                    deltas[index] = response["result"]["metrics"]
            except Exception as err:  # noqa: BLE001 - collected for assert
                errors.append(err)

        threads = [
            threading.Thread(target=worker, args=(index,))
            for index in range(len(programs))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        try:
            assert errors == []
            for delta in deltas:
                assert delta is not None
                # exactly this request's analysis, not a neighbor's
                assert delta.get("parses", 0) == 1
                assert delta.get("run_cache_misses", 0) == 1
                assert delta.get("run_cache_hits", 0) == 0
        finally:
            with ReproClient(server.config.socket_path) as client:
                client.shutdown()
            server.wait(timeout=10.0)
            server.finish()
