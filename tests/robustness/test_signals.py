"""Signal-driven shutdown, end to end: real processes, real signals.

``repro batch`` and ``repro serve`` both promise the conventional
contract — SIGINT exits 130, SIGTERM exits 143, and the way down is a
*drain* (pool shut down, artifacts flushed, clients answered), not a
traceback. The ``delay-file``/``delay-request`` faults hold the window
open so signal delivery lands mid-work deterministically."""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.serve.client import ReproClient, ServeRequestError, wait_for_server
from repro.testkit import TRI_PROGRAM

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def spawn(argv, tmp_path, fault_plan=None):
    env = dict(os.environ, PYTHONPATH=os.path.abspath(REPO_SRC))
    env.pop("REPRO_FAULTS", None)
    if fault_plan:
        env["REPRO_FAULTS"] = fault_plan
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *argv],
        cwd=str(tmp_path),
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


def write_programs(tmp_path, count):
    paths = []
    for index in range(count):
        path = tmp_path / f"prog{index}.f"
        path.write_text(TRI_PROGRAM)
        paths.append(path.name)
    return paths


class TestBatchSignals:
    @pytest.mark.parametrize(
        "signum,expected",
        [(signal.SIGTERM, 143), (signal.SIGINT, 130)],
        ids=["sigterm", "sigint"],
    )
    def test_signal_drains_with_conventional_exit(
        self, tmp_path, signum, expected
    ):
        paths = write_programs(tmp_path, 6)
        process = spawn(
            ["batch", *paths, "--metrics", "metrics.prom"],
            tmp_path,
            fault_plan="delay-file:ms=400",
        )
        time.sleep(0.8)  # land mid-batch, inside a delayed file
        process.send_signal(signum)
        stdout, stderr = process.communicate(timeout=30)
        assert process.returncode == expected, (stdout, stderr)
        assert "interrupted by signal" in stderr
        # The drain flushed the partial metrics artifact.
        metrics_text = (tmp_path / "metrics.prom").read_text()
        assert "repro_" in metrics_text


class TestServeSignals:
    def test_sigterm_mid_stream_drains_and_answers(self, tmp_path):
        """The chaos-smoke shape, as a test: a daemon under concurrent
        load takes SIGTERM mid-stream; every client holding a pending
        request gets a well-formed answer (``ok`` or ``shutting_down``),
        the exit code is 143, and the artifacts are valid."""
        program = tmp_path / "prog.f"
        program.write_text(TRI_PROGRAM)
        daemon = spawn(
            ["serve", "--socket", "repro.sock", "--cache-dir", "cache",
             "--queue-limit", "32", "--drain-timeout", "1",
             "--metrics", "metrics.prom", "--trace", "trace.json"],
            tmp_path,
            fault_plan="delay-request:ms=200",
        )
        socket_path = str(tmp_path / "repro.sock")
        try:
            assert wait_for_server(socket_path, timeout=10)
            import threading

            outcomes = []
            lock = threading.Lock()

            def one_request():
                try:
                    with ReproClient(socket_path, timeout=30) as client:
                        response = client.request(
                            "analyze", str(program)
                        )
                    with lock:
                        outcomes.append(("ok", response))
                except ServeRequestError as err:
                    with lock:
                        outcomes.append((err.code, None))
                except (ConnectionError, OSError):
                    with lock:
                        outcomes.append(("connection_lost", None))

            threads = [
                threading.Thread(target=one_request) for _ in range(8)
            ]
            for thread in threads:
                thread.start()
            time.sleep(0.45)  # a couple served, the rest in flight
            daemon.send_signal(signal.SIGTERM)
            for thread in threads:
                thread.join(timeout=30)
            stdout, stderr = daemon.communicate(timeout=30)
            assert daemon.returncode == 143, (stdout, stderr)
            assert "drained, exit 143" in stderr
            codes = sorted(kind for kind, _ in outcomes)
            assert len(codes) == 8
            assert all(
                kind in ("ok", "shutting_down") for kind in codes
            ), f"a drain must answer, never drop: {codes}"
            served = [resp for kind, resp in outcomes if kind == "ok"]
            assert served, f"nothing completed before the drain: {codes}"
            for response in served:
                assert response["result"]["status"] == "ok"
            # Valid artifacts survived the signal.
            assert "repro_serve_requests" in (
                (tmp_path / "metrics.prom").read_text()
            )
            trace_payload = json.loads((tmp_path / "trace.json").read_text())
            assert trace_payload["traceEvents"]
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.communicate(timeout=10)

    def test_shutdown_request_exits_zero(self, tmp_path):
        program = tmp_path / "prog.f"
        program.write_text(TRI_PROGRAM)
        daemon = spawn(
            ["serve", "--socket", "repro.sock", "--cache-dir", "cache"],
            tmp_path,
        )
        socket_path = str(tmp_path / "repro.sock")
        try:
            assert wait_for_server(socket_path, timeout=10)
            with ReproClient(socket_path) as client:
                assert client.analyze(str(program))["ok"]
                client.shutdown()
            stdout, stderr = daemon.communicate(timeout=30)
            assert daemon.returncode == 0, (stdout, stderr)
            assert not os.path.exists(socket_path), (
                "a clean exit must remove the socket file"
            )
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.communicate(timeout=10)
