"""The fault-injection registry itself: parsing, deterministic
triggering, cross-process plumbing. Everything else in this suite
stands on these semantics, so they are pinned first."""

from __future__ import annotations

import os
import time

import pytest

from repro import faults
from repro.obs import metrics


class TestParsing:
    def test_spec_roundtrip(self):
        spec = faults.parse_spec("kill-worker:stage=ret,nth=2")
        assert spec.point == "kill-worker"
        assert spec.params == {"stage": "ret", "nth": "2"}
        assert spec.describe() == "kill-worker:nth=2,stage=ret"

    def test_bare_point(self):
        spec = faults.parse_spec("fail-write")
        assert spec.point == "fail-write"
        assert spec.params == {}
        assert spec.describe() == "fail-write"

    def test_unknown_point_rejected(self):
        with pytest.raises(faults.FaultSpecError, match="unknown fault point"):
            faults.parse_spec("explode")

    def test_malformed_parameter_rejected(self):
        with pytest.raises(faults.FaultSpecError, match="malformed"):
            faults.parse_spec("kill-worker:stage")

    def test_non_integer_nth_rejected(self):
        with pytest.raises(faults.FaultSpecError, match="not an integer"):
            faults.parse_spec("kill-worker:nth=first")

    def test_plan_skips_blank_segments(self):
        plan = faults.parse_plan("delay-request:ms=5;;  ;fail-write")
        assert [spec.point for spec in plan] == ["delay-request", "fail-write"]

    def test_empty_spec_rejected(self):
        with pytest.raises(faults.FaultSpecError, match="empty"):
            faults.parse_spec("   ")


class TestTriggering:
    def test_nth_fires_on_exactly_the_kth_match(self):
        plan = faults.install("fail-write:nth=2", export_env=False)
        spec = plan.specs[0]
        assert faults.fire("fail-write") is None
        assert faults.fire("fail-write") is spec
        assert faults.fire("fail-write") is None
        assert spec.hits == 3
        assert spec.fired == 1

    def test_match_keys_restrict_call_sites(self):
        faults.install("kill-worker:stage=ret", export_env=False)
        assert faults.fire("kill-worker", stage="fwd") is None
        assert faults.fire("kill-worker", stage="ret") is not None

    def test_missing_context_key_never_matches(self):
        faults.install("kill-worker:stage=ret", export_env=False)
        assert faults.fire("kill-worker") is None

    def test_context_values_compared_as_strings(self):
        faults.install("kill-worker:level=1", export_env=False)
        assert faults.fire("kill-worker", level=0) is None
        assert faults.fire("kill-worker", level=1) is not None

    def test_wrong_point_never_fires(self):
        faults.install("fail-write", export_env=False)
        assert faults.fire("truncate-cache") is None

    def test_flag_file_fires_once_globally(self, tmp_path):
        flag = tmp_path / "armed"
        flag.write_text("")
        faults.install(f"fail-write:flag={flag}", export_env=False)
        assert faults.fire("fail-write") is not None
        assert not flag.exists(), "firing must consume the flag"
        assert faults.fire("fail-write") is None

    def test_disarmed_fire_is_a_noop(self):
        faults.clear()
        assert faults.fire("fail-write") is None
        assert faults.active() is None

    def test_firing_is_counted_in_metrics(self):
        registry = metrics.default_registry()
        base = registry.snapshot()
        faults.install("fail-write", export_env=False)
        faults.fire("fail-write")
        delta = registry.delta_since(base)["counters"]
        assert delta.get("faults_fired") == 1
        assert delta.get("faults_fired_fail_write") == 1


class TestDelay:
    def test_delay_sleeps_the_requested_ms(self):
        faults.install("delay-request:ms=30", export_env=False)
        began = time.monotonic()
        slept = faults.delay("delay-request", op="analyze")
        assert slept == pytest.approx(0.03)
        assert time.monotonic() - began >= 0.025

    def test_delay_unmatched_returns_zero(self):
        faults.install("delay-request:op=status,ms=50", export_env=False)
        assert faults.delay("delay-request", op="analyze") == 0.0


class TestProcessPlumbing:
    def test_install_exports_and_clear_removes_env(self):
        faults.install(["delay-file:ms=5", "fail-write"])
        assert faults.ENV_VAR in os.environ
        reparsed = faults.parse_plan(os.environ[faults.ENV_VAR])
        assert [s.describe() for s in reparsed] == ["delay-file:ms=5",
                                                    "fail-write"]
        faults.clear()
        assert faults.ENV_VAR not in os.environ
        assert faults.active() is None

    def test_host_process_is_never_killed(self):
        """The dangerous one: ``kill-worker`` in the host (inline or
        thread execution) must record the fire and then *not* SIGKILL —
        otherwise a demoted-to-serial engine would take the daemon down
        with it."""
        plan = faults.install("kill-worker", export_env=False)
        faults.maybe_kill_worker(stage="ret", level=0)
        assert plan.specs[0].fired == 1  # and we are still alive
