"""End-to-end integration scenarios: realistic multi-procedure programs
through the full public API, checking both the discovered CONSTANTS and
the substitution counts against hand-computed expectations."""

from repro import AnalysisConfig, JumpFunctionKind, analyze_source
from repro.ir.interp import run_source


def constants_by_name(result, proc):
    return {
        var.name: value
        for var, value in result.constants.constants_of(proc).items()
    }


class TestLoopBoundsScenario:
    """The paper's motivating application: interprocedural constants are
    often loop bounds (Eigenmann & Blume), and knowing them tells the
    compiler the trip count."""

    SOURCE = (
        "      PROGRAM MAIN\n"
        "      COMMON /CFG/ NPTS\n"
        "      NPTS = 128\n"
        "      CALL SMOOTH\n"
        "      CALL SCALE(4)\n"
        "      END\n"
        "      SUBROUTINE SMOOTH\n"
        "      COMMON /CFG/ NPTS\n"
        "      INTEGER S\n"
        "      S = 0\n"
        "      DO I = 1, NPTS\n"
        "        S = S + I\n"
        "      ENDDO\n"
        "      PRINT *, S\n"
        "      END\n"
        "      SUBROUTINE SCALE(F)\n"
        "      COMMON /CFG/ NPTS\n"
        "      DO I = 1, NPTS\n"
        "        X = I * F\n"
        "      ENDDO\n"
        "      END\n"
    )

    def test_loop_bounds_discovered(self):
        result = analyze_source(self.SOURCE)
        assert constants_by_name(result, "smooth") == {"npts": 128}
        assert constants_by_name(result, "scale") == {"npts": 128, "f": 4}

    def test_literal_misses_the_global_bound(self):
        result = analyze_source(
            self.SOURCE, AnalysisConfig(jump_function=JumpFunctionKind.LITERAL)
        )
        assert "npts" not in constants_by_name(result, "smooth")

    def test_analysis_matches_execution(self):
        trace = run_source(self.SOURCE)
        assert trace.output == [str(sum(range(1, 129)))]


class TestDiamondConflict:
    SOURCE = (
        "      PROGRAM MAIN\n"
        "      READ *, C\n"
        "      IF (C .GT. 0) THEN\n"
        "        CALL W(5)\n"
        "      ELSE\n"
        "        CALL W(5)\n"
        "      ENDIF\n"
        "      CALL V(C)\n"
        "      END\n"
        "      SUBROUTINE W(K)\n      A = K\n      END\n"
        "      SUBROUTINE V(K)\n      A = K\n      END\n"
    )

    def test_agreeing_branches_still_constant(self):
        result = analyze_source(self.SOURCE)
        assert constants_by_name(result, "w") == {"k": 5}

    def test_runtime_value_not_claimed(self):
        result = analyze_source(self.SOURCE)
        assert constants_by_name(result, "v") == {}


class TestMultiLevelPropagation:
    SOURCE = (
        "      PROGRAM MAIN\n      CALL L1(2, 3)\n      END\n"
        "      SUBROUTINE L1(A, B)\n      CALL L2(A * B, A + B)\n      END\n"
        "      SUBROUTINE L2(P, Q)\n      CALL L3(P + Q)\n      END\n"
        "      SUBROUTINE L3(R)\n      X = R\n      END\n"
    )

    def test_polynomial_chains_compose(self):
        result = analyze_source(self.SOURCE)
        assert constants_by_name(result, "l2") == {"p": 6, "q": 5}
        assert constants_by_name(result, "l3") == {"r": 11}

    def test_pass_through_cannot_compose_arithmetic(self):
        result = analyze_source(
            self.SOURCE,
            AnalysisConfig(jump_function=JumpFunctionKind.PASS_THROUGH),
        )
        assert constants_by_name(result, "l2") == {}
        assert constants_by_name(result, "l3") == {}


class TestReturnValueFlow:
    SOURCE = (
        "      PROGRAM MAIN\n"
        "      COMMON /ST/ NDIM\n"
        "      CALL SETUP\n"
        "      K = GETDIM()\n"
        "      CALL USE(K)\n"
        "      END\n"
        "      SUBROUTINE SETUP\n      COMMON /ST/ NDIM\n      NDIM = 3\n"
        "      END\n"
        "      INTEGER FUNCTION GETDIM()\n      COMMON /ST/ NDIM\n"
        "      GETDIM = NDIM\n      END\n"
        "      SUBROUTINE USE(D)\n      X = D * D\n      END\n"
    )

    def test_accessor_function_result_propagates(self):
        result = analyze_source(self.SOURCE)
        assert constants_by_name(result, "use") == {"d": 3, "ndim": 3}

    def test_without_returns_everything_lost(self):
        result = analyze_source(
            self.SOURCE, AnalysisConfig(use_return_functions=False)
        )
        assert constants_by_name(result, "use") == {}


class TestSideEffectKilling:
    SOURCE = (
        "      PROGRAM MAIN\n"
        "      COMMON /G/ MODE\n"
        "      MODE = 1\n"
        "      CALL TOUCH\n"
        "      CALL USE\n"
        "      END\n"
        "      SUBROUTINE TOUCH\n      COMMON /G/ MODE\n      READ *, MODE\n"
        "      END\n"
        "      SUBROUTINE USE\n      COMMON /G/ MODE\n      X = MODE\n"
        "      END\n"
    )

    def test_real_modification_kills_constant(self):
        # TOUCH really overwrites MODE with input: claiming MODE=1 in
        # USE would be unsound, and the analyzer must not do it.
        result = analyze_source(self.SOURCE)
        assert constants_by_name(result, "use") == {}
        assert constants_by_name(result, "touch") == {"mode": 1}

    def test_soundness_against_execution(self):
        trace = run_source(self.SOURCE, inputs=[42])
        result = analyze_source(self.SOURCE)
        for proc in ("touch", "use"):
            claimed = result.constants.constants_of(proc)
            assert trace.constant_violations(proc, claimed) == []


class TestStopOnlyPath:
    def test_procedure_that_never_returns(self):
        result = analyze_source(
            "      PROGRAM MAIN\n      CALL CHECKED(1)\n      X = 5\n"
            "      CALL USE(X)\n      END\n"
            "      SUBROUTINE CHECKED(OK)\n"
            "      IF (OK .NE. 1) THEN\n      STOP\n      ENDIF\n      END\n"
            "      SUBROUTINE USE(K)\n      A = K\n      END\n"
        )
        assert constants_by_name(result, "use") == {"k": 5}


class TestWholeSuiteSoundness:
    def test_every_suite_program_is_sound(self):
        """Run each benchmark program and verify every CONSTANTS claim
        against the interpreter trace (the strongest end-to-end check on
        the actual evaluation workload)."""
        from repro.frontend.parser import parse_source
        from repro.frontend.source import SourceFile
        from repro.ir.interp import run_program
        from repro.ir.lowering import lower_module
        from repro.suite.programs import SUITE_PROGRAM_NAMES, program_source

        for name in SUITE_PROGRAM_NAMES:
            source = program_source(name)
            executable = lower_module(
                parse_source(source), SourceFile(f"{name}.f", source)
            )
            trace = run_program(executable, inputs=[2, 5, 1] * 40, fuel=5_000_000)
            result = analyze_source(source, filename=f"{name}.f")
            for procedure in result.program:
                claimed = result.constants.constants_of(procedure.name)
                violations = trace.constant_violations(procedure.name, claimed)
                assert violations == [], (name, violations[:3])
