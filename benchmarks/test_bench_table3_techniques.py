"""Table 3 — the most precise jump function vs other propagation
techniques: polynomial without MOD, with MOD, complete propagation, and
purely intraprocedural propagation."""

import pytest

from benchmarks.conftest import emit_once
from repro.config import AnalysisConfig
from repro.suite.programs import SUITE_PROGRAM_NAMES
from repro.suite.tables import compute_table3, format_table3, run_configuration


@pytest.fixture(scope="module")
def table3_rows():
    return compute_table3()


_CONFIGS = {
    "without_mod": AnalysisConfig.polynomial_without_mod(),
    "with_mod": AnalysisConfig.polynomial_with_mod(),
    "complete": AnalysisConfig.complete_propagation(),
    "intraprocedural": AnalysisConfig.intraprocedural_only(),
}


@pytest.mark.parametrize("technique", list(_CONFIGS), ids=list(_CONFIGS))
def test_table3_analysis_time_per_technique(benchmark, technique, table3_rows, capfd):
    config = _CONFIGS[technique]

    def run():
        return sum(
            run_configuration(name, config) for name in SUITE_PROGRAM_NAMES
        )

    total = benchmark(run)
    assert total >= 0
    emit_once(capfd, "table3", format_table3(rows=table3_rows))
