"""Table 2 — constants found through use of jump functions.

One benchmark per forward jump function measures the full-suite analysis
time of that implementation (the §3.1.5 cost comparison); the report
benchmark regenerates the complete table.
"""

import pytest

from benchmarks.conftest import emit_once
from repro.config import AnalysisConfig, JumpFunctionKind
from repro.ipcp.driver import prepare_program
from repro.ipcp.jump_functions import build_forward_jump_functions
from repro.ipcp.return_functions import build_return_functions
from repro.suite.programs import SUITE_PROGRAM_NAMES, program_source
from repro.testkit import lower
from repro.suite.tables import compute_table2, format_table2, run_configuration


@pytest.fixture(scope="module")
def table2_rows():
    return compute_table2()


def _full_suite(config):
    return sum(run_configuration(name, config) for name in SUITE_PROGRAM_NAMES)


@pytest.mark.parametrize(
    "kind",
    [
        JumpFunctionKind.LITERAL,
        JumpFunctionKind.INTRAPROCEDURAL,
        JumpFunctionKind.PASS_THROUGH,
        JumpFunctionKind.POLYNOMIAL,
    ],
    ids=lambda kind: kind.value,
)
def test_table2_analysis_time_per_kind(benchmark, kind, table2_rows, capfd):
    """End-to-end suite analysis time under each jump function."""
    config = AnalysisConfig.table2(kind)
    total = benchmark(_full_suite, config)
    assert total > 0
    emit_once(capfd, "table2", format_table2(rows=table2_rows))


def test_table2_jump_function_construction_cost(benchmark, capfd, table2_rows):
    """§3.1.5: jump-function *construction* cost (value numbering plus
    extraction) for the most expensive kind, isolated from propagation.
    Programs are prepared (lowered + SSA) once; each round rebuilds the
    return and forward jump functions for the whole suite."""
    prepared = []
    for name in SUITE_PROGRAM_NAMES:
        source = program_source(name)
        program = lower(source, f"{name}.f")
        callgraph, modref = prepare_program(program, AnalysisConfig())
        prepared.append((program, callgraph, modref))

    def build_all():
        count = 0
        for program, callgraph, modref in prepared:
            return_map = build_return_functions(program, callgraph, modref)
            table = build_forward_jump_functions(
                program, callgraph, JumpFunctionKind.POLYNOMIAL, return_map
            )
            count += len(table)
        return count

    total = benchmark(build_all)
    assert total > 0
    emit_once(capfd, "table2", format_table2(rows=table2_rows))
