"""Figure 1 — the constant-propagation lattice.

Regenerates the meet table of Figure 1 and measures meet throughput
(the innermost operation of the whole propagation)."""

from benchmarks.conftest import emit_once
from repro.lattice import BOTTOM, TOP, const, meet_all


def _figure1_table() -> str:
    elements = [("T", TOP), ("c1=3", const(3)), ("c2=4", const(4)),
                ("_|_", BOTTOM)]
    width = 7
    lines = ["Figure 1: the constant propagation lattice (meet table)"]
    header = " ∧    | " + " ".join(f"{label:>{width}}" for label, _ in elements)
    lines.append(header)
    lines.append("-" * len(header))
    for label_a, a in elements:
        cells = []
        for _label_b, b in elements:
            cells.append(f"{str(a.meet(b)):>{width}}")
        lines.append(f"{label_a:<5} | " + " ".join(cells))
    lines.append("")
    lines.append("Rules: T ∧ x = x;  c ∧ c = c;  ci ∧ cj = _|_ (i≠j);  _|_ ∧ x = _|_")
    return "\n".join(lines)


def test_figure1_meet_throughput(benchmark, capfd):
    """Meet over a representative operand mix."""
    operands = [TOP, BOTTOM] + [const(v) for v in range(-3, 4)]
    pairs = [(a, b) for a in operands for b in operands]

    def run():
        total = 0
        for a, b in pairs:
            result = a.meet(b)
            total += 1 if result.is_constant else 0
        return total

    result = benchmark(run)
    assert result > 0
    emit_once(capfd, "figure1", _figure1_table())


def test_figure1_meet_all_chains(benchmark, capfd):
    """meet_all over call-graph-edge-like value vectors."""
    vectors = [
        [const(5)] * 8,
        [const(5)] * 7 + [const(6)],
        [TOP] * 4 + [const(2)] * 4,
        [BOTTOM] + [const(1)] * 7,
    ]

    def run():
        return [meet_all(vector) for vector in vectors]

    results = benchmark(run)
    assert results[0] == const(5)
    assert results[1] == BOTTOM
    assert results[2] == const(2)
    assert results[3] == BOTTOM
    emit_once(capfd, "figure1", _figure1_table())
