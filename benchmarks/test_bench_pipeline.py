"""Pipeline throughput: parallel fan-out and the persistent cache.

Unlike the paper-table benches this module measures the *engine* (PR 3):
serial vs SCC-parallel jump-function generation, and cold vs warm
summary-cache runs. Results land in ``BENCH_PIPELINE.json`` at the repo
root so CI can archive them and gate on the cache hit-rate.

Tiers (``BENCH_PIPELINE_TIER``):

* ``tiny``  — 12 procedures, one repetition; smoke-test the harness.
* ``small`` — 50 and 500 procedures (the default; what CI runs).
* ``full``  — 50, 200, and 500 procedures.
* ``large`` — one 10k-100k-procedure program from the layered
  :func:`generate_scaled_program` tier (``BENCH_LARGE_PROCS``, default
  10000, capped at 100000). Runs only :func:`test_large_scale`: a
  serial pass in a fresh subprocess (clean peak-RSS and wall-time
  accounting) and a parallel arena pass, gating cells/second
  throughput, peak RSS, result-digest identity, and — on hosts with
  at least four CPUs — parallel scaling efficiency. The arena pass
  additionally asserts zero pickle-channel payload entries: summaries
  moved through the shared-memory arena, not the pool pipe.

``BENCH_PIPELINE.json`` holds every tier side by side under a
``{"tiers": {<name>: <report>}}`` roof; a run replaces only its own
tier's section, so regenerating ``small`` keeps the recorded ``large``
numbers (and vice versa).

The ≥1.5× parallel-speedup gate needs at least four CPUs: the growth
container has one, where a process pool can only lose. Below that the
gate is an explicit ``pytest.skip`` (never a silent pass), and every
speedup/throughput row measured with more workers than CPUs carries
``cpu_constrained: true`` so BENCH_PIPELINE.json readers don't mistake
contention numbers for scaling regressions. Byte-identity of parallel
vs serial output is asserted everywhere.

The *batch* section measures what ``repro batch`` exists for: one
interpreter start-up and import pass amortized over N files, instead of
N separate ``repro analyze`` invocations. That win is CPU-count
independent (it is fixed-cost amortization, not parallelism), so its
≥1.5× gate asserts on every host — including this 1-CPU container.
The *incremental* section edits one procedure of a cached program and
gates on the dirty-set guarantee: only the edited procedure and its
transitive callers are recomputed.
"""

import json
import os
import re
import subprocess
import sys
import time
from pathlib import Path

import pytest

from benchmarks.conftest import emit_once
from repro.config import AnalysisConfig
from repro.engine import Engine
from repro.engine.memo import clear_memos
from repro.ipcp.driver import analyze_source
from repro.suite.generator import GeneratorConfig, generate_program

REPO_ROOT = Path(__file__).resolve().parents[1]
REPORT_PATH = REPO_ROOT / "BENCH_PIPELINE.json"

TIERS = {
    "tiny": [12],
    "small": [50, 500],
    "full": [50, 200, 500],
    "large": [],  # drives test_large_scale, not the size matrix
}
TIER = os.environ.get("BENCH_PIPELINE_TIER", "small")
SIZES = TIERS.get(TIER, TIERS["small"])

#: How many files the batch bench feeds through one driver invocation.
BATCH_FILES = {"tiny": 3, "small": 8, "full": 12}.get(TIER, 8)

PARALLEL_JOBS = 4
MANY_CPUS = (os.cpu_count() or 1) >= PARALLEL_JOBS


def _cpu_constrained(jobs: int) -> bool:
    """More workers than CPUs: any recorded 'speedup' measures
    contention, not scaling. Rows carry ``cpu_constrained: true`` so
    readers of BENCH_PIPELINE.json don't mistake them for regressions."""
    return (os.cpu_count() or 1) < jobs

#: Procedure count for the ``large`` tier (layered scaled generator).
LARGE_PROCS = min(
    max(int(os.environ.get("BENCH_LARGE_PROCS", "10000")), 1000), 100_000
)


def source_for(procedures):
    return generate_program(
        seed=procedures,
        config=GeneratorConfig(
            procedures=procedures, max_statements_per_procedure=10
        ),
    )


def fingerprint(result):
    return (
        result.constants.format_report(),
        dict(result.substitution.per_procedure),
        result.transformed_source(),
    )


def timed(fn):
    clear_memos()
    start = time.perf_counter()
    value = fn()
    return time.perf_counter() - start, value


def entry_cells(result):
    """Total constant-propagation problem size: the sum of every
    procedure's entry-domain width (formals + scalar globals) — the
    cell count the iterative solver actually fills in."""
    from repro.ipcp.solver import entry_domain

    program = result.program
    return sum(
        len(entry_domain(procedure, program)) for procedure in program
    )


def peak_rss_mb():
    """This process's peak resident set, in MiB (Linux ru_maxrss is
    KiB). A high-water mark — meaningful per fresh subprocess, only an
    upper bound when read mid-suite."""
    import resource

    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


@pytest.fixture(scope="module")
def report():
    data = {
        "tier": TIER,
        "cpu_count": os.cpu_count(),
        "jobs": PARALLEL_JOBS,
        "parallel": [],
        "cache": [],
        "batch": [],
        "incremental": [],
        "observability": [],
        "throughput": [],
        "large": [],
    }
    yield data
    # Merge into the multi-tier report: replace this tier's section,
    # keep every other tier's recorded numbers.
    merged = {"tiers": {}}
    if REPORT_PATH.exists():
        try:
            previous = json.loads(REPORT_PATH.read_text())
            if isinstance(previous.get("tiers"), dict):
                merged = previous
        except ValueError:
            pass
    merged["tiers"][TIER] = data
    REPORT_PATH.write_text(json.dumps(merged, indent=2) + "\n")


@pytest.mark.parametrize("procedures", SIZES)
def test_parallel_speedup(procedures, report, capfd):
    text = source_for(procedures)
    config = AnalysisConfig()

    def serial_run():
        result = analyze_source(text, config)
        return fingerprint(result), entry_cells(result)

    serial_seconds, (serial, cells) = timed(serial_run)

    def parallel_run():
        with Engine(jobs=PARALLEL_JOBS, executor="process") as engine:
            return fingerprint(analyze_source(text, config, engine=engine))

    parallel_seconds, parallel = timed(parallel_run)

    assert parallel == serial, "parallel output must be byte-identical"
    speedup = serial_seconds / parallel_seconds if parallel_seconds else 0.0
    row = {
        "procedures": procedures,
        "serial_seconds": round(serial_seconds, 4),
        "parallel_seconds": round(parallel_seconds, 4),
        "speedup": round(speedup, 3),
    }
    throughput_row = {
        "procedures": procedures,
        "cells": cells,
        "cells_per_second": round(
            cells / serial_seconds if serial_seconds else 0.0, 1
        ),
        "peak_rss_mb": round(peak_rss_mb(), 1),
    }
    if _cpu_constrained(PARALLEL_JOBS):
        row["cpu_constrained"] = True
        throughput_row["cpu_constrained"] = True
    report["parallel"].append(row)
    report["throughput"].append(throughput_row)
    emit_once(
        capfd,
        f"pipeline-parallel-{procedures}",
        f"pipeline {procedures} procs: serial {serial_seconds:.2f}s, "
        f"jobs={PARALLEL_JOBS} {parallel_seconds:.2f}s "
        f"(speedup {speedup:.2f}x, cpus={os.cpu_count()})",
    )
    if procedures >= 500:
        if not MANY_CPUS:
            pytest.skip(
                f"parallel-scaling gate needs >= {PARALLEL_JOBS} CPUs "
                f"(host has {os.cpu_count()}); row recorded as "
                f"cpu_constrained"
            )
        assert speedup >= 1.5, (
            f"expected >=1.5x at {procedures} procedures on a "
            f"{os.cpu_count()}-cpu host, got {speedup:.2f}x"
        )


@pytest.mark.parametrize("procedures", SIZES)
def test_cache_cold_vs_warm(procedures, report, tmp_path_factory, capfd):
    text = source_for(procedures)
    config = AnalysisConfig()
    cache_dir = str(tmp_path_factory.mktemp(f"cache{procedures}"))

    def cold_run():
        with Engine(cache_dir=cache_dir) as engine:
            result = analyze_source(text, config, engine=engine)
            engine.record_run(text, config, result)
            return fingerprint(result)

    cold_seconds, cold = timed(cold_run)

    # Warm summary path: every per-procedure summary comes off disk.
    def warm_run():
        with Engine(cache_dir=cache_dir) as engine:
            value = fingerprint(analyze_source(text, config, engine=engine))
            return value, engine.cache.stats.hit_rate

    warm_seconds, (warm, hit_rate) = timed(warm_run)
    assert warm == cold
    assert hit_rate >= 0.95, f"warm hit-rate {hit_rate:.2f} below 0.95"

    # Warm run-level path: what `repro analyze --cache` replays.
    def replay_run():
        with Engine(cache_dir=cache_dir) as engine:
            payload = engine.cached_run(text, config)
            assert payload is not None, "clean run must have been recorded"
            return payload["constants_report"]

    replay_seconds, constants_report = timed(replay_run)
    assert constants_report == cold[0]
    replay_speedup = cold_seconds / replay_seconds if replay_seconds else 0.0
    assert replay_speedup >= 5.0, (
        f"warm replay only {replay_speedup:.1f}x faster than cold"
    )

    row = {
        "procedures": procedures,
        "cold_seconds": round(cold_seconds, 4),
        "warm_seconds": round(warm_seconds, 4),
        "replay_seconds": round(replay_seconds, 4),
        "hit_rate": round(hit_rate, 4),
        "replay_speedup": round(replay_speedup, 1),
    }
    report["cache"].append(row)
    emit_once(
        capfd,
        f"pipeline-cache-{procedures}",
        f"cache {procedures} procs: cold {cold_seconds:.2f}s, warm "
        f"{warm_seconds:.2f}s (hit-rate {hit_rate:.0%}), replay "
        f"{replay_seconds*1000:.1f}ms ({replay_speedup:.0f}x)",
    )


def _cli_environment():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        part
        for part in (str(REPO_ROOT / "src"), env.get("PYTHONPATH"))
        if part
    )
    return env


def _run_cli(arguments, env):
    completed = subprocess.run(
        [sys.executable, "-m", "repro", *arguments],
        env=env,
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert completed.returncode == 0, completed.stderr
    return completed.stdout


not_large = pytest.mark.skipif(
    TIER == "large", reason="the large tier runs only test_large_scale"
)


@not_large
def test_batch_vs_serial_invocations(report, tmp_path_factory, capfd):
    """One ``repro batch`` invocation vs N separate ``repro analyze``
    subprocesses over the same files. The batch driver pays interpreter
    start-up and imports once, so it must win by ≥1.5× on *any* CPU
    count — this gate is the 1-CPU-host replacement for the pool
    speedup gate above."""
    directory = tmp_path_factory.mktemp("batchfiles")
    paths = []
    for index in range(BATCH_FILES):
        path = directory / f"unit{index}.f"
        path.write_text(
            generate_program(
                seed=index,
                config=GeneratorConfig(
                    procedures=10, max_statements_per_procedure=8
                ),
            )
        )
        paths.append(str(path))
    env = _cli_environment()

    def serial_invocations():
        return [_run_cli(["analyze", path], env) for path in paths]

    serial_seconds, _ = timed(serial_invocations)
    batch_seconds, batch_out = timed(
        lambda: _run_cli(["batch", *paths], env)
    )
    for path in paths:
        assert f"{path}:" in batch_out, "every file must be reported"
    speedup = serial_seconds / batch_seconds if batch_seconds else 0.0
    row = {
        "files": len(paths),
        "serial_invocations_seconds": round(serial_seconds, 4),
        "batch_seconds": round(batch_seconds, 4),
        "speedup": round(speedup, 3),
    }
    report["batch"].append(row)
    emit_once(
        capfd,
        "pipeline-batch",
        f"batch {len(paths)} files: {len(paths)} x analyze "
        f"{serial_seconds:.2f}s, one batch {batch_seconds:.2f}s "
        f"(speedup {speedup:.2f}x, cpus={os.cpu_count()})",
    )
    assert speedup >= 1.5, (
        f"batch only {speedup:.2f}x faster than {len(paths)} serial "
        f"invocations — start-up amortization is CPU-count independent"
    )


def _edit_first_literal(text):
    """Bump the first integer literal assignment in the program — a
    semantic edit confined to the first unit (MAIN, the call-graph
    root), so the dirty set stays minimal: Merkle keys fold callee into
    caller, and nothing calls MAIN."""
    matches = list(re.finditer(r"(?m)= (-?\d+)$", text))
    assert matches, "generated program has no literal assignment"
    target = matches[0]
    bumped = str(int(target.group(1)) + 1)
    return text[: target.start(1)] + bumped + text[target.end(1):]


@pytest.mark.parametrize("procedures", SIZES)
def test_incremental_dirty_set(procedures, report, tmp_path_factory, capfd):
    """Edit one procedure of a cached program: the re-analysis must
    recompute only the dirty set (edited + transitive callers) and
    leave every other summary to the cache."""
    from repro.engine.batch import analyze_one

    directory = tmp_path_factory.mktemp(f"incr{procedures}")
    path = directory / "program.f"
    path.write_text(source_for(procedures))
    config = AnalysisConfig()
    cache_dir = str(directory / "cache")

    cold_seconds, cold = timed(
        lambda: analyze_one(str(path), config, cache_dir, want_profile=True)
    )
    assert cold.ok and not cold.replayed
    # A cold run has no previous manifest: everything counts dirty, so
    # this is the program's total unit count (procedures plus MAIN).
    total = cold.profile["counters"]["incremental_dirty"]

    path.write_text(_edit_first_literal(path.read_text()))
    incremental_seconds, warm = timed(
        lambda: analyze_one(str(path), config, cache_dir, want_profile=True)
    )
    assert warm.ok and not warm.replayed

    counters = warm.profile["counters"]
    dirty = counters.get("incremental_dirty", 0)
    clean = counters.get("incremental_clean", 0)
    assert dirty + clean == total
    assert 0 < dirty < total, (
        f"dirty set is {dirty}/{total} — an edit to one root "
        f"procedure must not invalidate the whole program"
    )
    assert counters.get("recomputed_ret", 0) == dirty, (
        "jump functions recomputed outside the dirty set"
    )
    speedup = cold_seconds / incremental_seconds if incremental_seconds else 0.0
    row = {
        "procedures": procedures,
        "cold_seconds": round(cold_seconds, 4),
        "incremental_seconds": round(incremental_seconds, 4),
        "dirty": dirty,
        "clean": clean,
        "speedup": round(speedup, 3),
    }
    report["incremental"].append(row)
    emit_once(
        capfd,
        f"pipeline-incremental-{procedures}",
        f"incremental {procedures} procs: cold {cold_seconds:.2f}s, "
        f"edit-one re-analysis {incremental_seconds:.2f}s "
        f"(dirty {dirty}, clean {clean}, speedup {speedup:.2f}x)",
    )


@not_large
def test_observability_overhead(report, capfd):
    """Gate the tracing layer's zero-cost-when-disabled contract.

    A direct disabled-vs-pre-PR wall-time diff is noise-bound on this
    1-CPU container (run-to-run variance alone exceeds the 3% budget),
    so the gate is structural plus microbenchmark: verify the disabled
    path allocates nothing, measure what one disabled guard/null-span
    actually costs, count how many instrumented sites a real traced run
    of this program hits, and assert that worst-case product stays
    under 3% of the disabled run's wall time.
    """
    from repro.obs import trace
    from repro.obs.trace import _NULL_SPAN, validate_chrome_trace

    text = source_for(SIZES[0])
    config = AnalysisConfig()

    # Structural zero-allocation contract: no tracer object exists, and
    # span() hands back one shared singleton instead of allocating.
    assert trace.ENABLED is False and trace.active() is None
    assert trace.span("a") is _NULL_SPAN and trace.span("b", k=1) is _NULL_SPAN

    disabled_seconds, baseline = timed(
        lambda: fingerprint(analyze_source(text, config))
    )

    clear_memos()
    tracer = trace.enable()
    try:
        enabled_seconds, traced = timed(
            lambda: fingerprint(analyze_source(text, config))
        )
    finally:
        trace.disable()
    assert traced == baseline, "tracing must not change analysis output"
    assert validate_chrome_trace(tracer.to_chrome()) == []
    events = len(tracer.events)
    assert events > 0, "a traced run must record events"

    # Per-site disabled cost: the `if trace.ENABLED:` guard instants
    # hide behind, and the null span stages go through.
    iterations = 200_000
    begin = time.perf_counter()
    for _ in range(iterations):
        if trace.ENABLED:
            trace.instant("never")
    guard_seconds = (time.perf_counter() - begin) / iterations
    begin = time.perf_counter()
    for _ in range(iterations):
        with trace.span("never"):
            pass
    null_span_seconds = (time.perf_counter() - begin) / iterations

    # Every event of the traced run maps to at most one disabled-path
    # site, so this bounds the instrumentation's disabled cost.
    worst_case_seconds = events * max(guard_seconds, null_span_seconds)
    budget_seconds = 0.03 * disabled_seconds
    assert worst_case_seconds <= budget_seconds, (
        f"disabled-tracing overhead bound {worst_case_seconds * 1e3:.3f}ms "
        f"exceeds 3% of the {disabled_seconds * 1e3:.0f}ms disabled run "
        f"({events} instrumented sites x "
        f"{max(guard_seconds, null_span_seconds) * 1e9:.0f}ns)"
    )

    row = {
        "procedures": SIZES[0],
        "disabled_seconds": round(disabled_seconds, 4),
        "enabled_seconds": round(enabled_seconds, 4),
        "events": events,
        "guard_nanoseconds": round(guard_seconds * 1e9, 1),
        "null_span_nanoseconds": round(null_span_seconds * 1e9, 1),
        "worst_case_overhead_pct": round(
            100.0 * worst_case_seconds / disabled_seconds, 4
        )
        if disabled_seconds
        else 0.0,
    }
    report["observability"].append(row)
    emit_once(
        capfd,
        "pipeline-observability",
        f"observability {SIZES[0]} procs: disabled {disabled_seconds:.2f}s, "
        f"traced {enabled_seconds:.2f}s ({events} events); disabled-path "
        f"bound {row['worst_case_overhead_pct']:.3f}% of wall time "
        f"(budget 3%)",
    )


# One analysis pass in a fresh interpreter: wall time, solver cell
# count, a result digest, the process's own peak RSS (clean — nothing
# else ran in it), and the arena/pickle transport counters.
_LARGE_RUNNER = """\
import hashlib, json, resource, sys, time

path, jobs = sys.argv[1], int(sys.argv[2])
from repro.config import AnalysisConfig
from repro.ipcp.driver import analyze_source
from repro.ipcp.solver import entry_domain
from repro.obs import metrics

text = open(path).read()
config = AnalysisConfig()
start = time.perf_counter()
if jobs > 1:
    from repro.engine import Engine
    with Engine(jobs=jobs, executor="process") as engine:
        result = analyze_source(text, config, engine=engine)
else:
    result = analyze_source(text, config)
seconds = time.perf_counter() - start

program = result.program
cells = sum(len(entry_domain(p, program)) for p in program)
digest = hashlib.sha256()
digest.update(result.constants.format_report().encode())
digest.update(json.dumps(
    dict(result.substitution.per_procedure), sort_keys=True).encode())
print(json.dumps({
    "seconds": round(seconds, 3),
    "cells": cells,
    "digest": digest.hexdigest(),
    "peak_rss_mb": round(
        resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0, 1),
    "pickle_entries": metrics.value("engine_pickle_payload_entries"),
    "stream_records": metrics.value("arena_stream_records"),
    "arena_fallbacks": metrics.value("arena_fallbacks"),
}))
"""


@pytest.mark.skipif(
    TIER != "large", reason="set BENCH_PIPELINE_TIER=large"
)
def test_large_scale(report, tmp_path_factory, capfd):
    """The 10k-100k-procedure tier: one layered scaled-generator
    program, analyzed serially and with the arena-backed pool, each in
    a fresh subprocess so wall time and peak RSS are unpolluted.

    Gates: result digests identical, the parallel run moved zero
    summary payloads over the pickle channel (the arena carried them),
    cells/second throughput, a peak-RSS ceiling that scales with the
    procedure count, and — on >= 4-CPU hosts — >= 1.5x parallel
    speedup at >= 37.5% per-worker efficiency.
    """
    from repro.suite.generator import ScaleConfig, generate_scaled_program

    directory = tmp_path_factory.mktemp("large")
    path = directory / "large.f"
    generate_seconds, text = timed(
        lambda: generate_scaled_program(
            0, ScaleConfig(procedures=LARGE_PROCS)
        )
    )
    path.write_text(text)
    env = _cli_environment()

    def run(jobs):
        completed = subprocess.run(
            [sys.executable, "-c", _LARGE_RUNNER, str(path), str(jobs)],
            env=env,
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert completed.returncode == 0, completed.stderr
        return json.loads(completed.stdout)

    serial = run(1)
    jobs = min(PARALLEL_JOBS, max(2, os.cpu_count() or 1))
    parallel = run(jobs)

    assert parallel["digest"] == serial["digest"], (
        "arena-parallel result diverged from serial"
    )
    assert parallel["stream_records"] > 0, (
        "parallel run never published to the arena stream"
    )
    assert parallel["arena_fallbacks"] == 0, (
        "arena fell back to the pickle channel on a healthy host"
    )
    assert parallel["pickle_entries"] == 0, (
        f"{parallel['pickle_entries']} summary payload entries crossed "
        f"the pool's pickle channel — the arena should carry them all"
    )

    cells = serial["cells"]
    assert cells >= LARGE_PROCS, (
        f"{cells} solver cells for {LARGE_PROCS} procedures — the "
        f"entry domains collapsed"
    )
    cells_per_second = cells / serial["seconds"] if serial["seconds"] else 0.0
    assert cells_per_second >= 500, (
        f"serial throughput {cells_per_second:.0f} cells/s below the "
        f"500 cells/s floor"
    )
    rss_budget_mb = max(512.0, LARGE_PROCS * 0.06)
    assert serial["peak_rss_mb"] <= rss_budget_mb, (
        f"serial peak RSS {serial['peak_rss_mb']:.0f}MiB over the "
        f"{rss_budget_mb:.0f}MiB budget for {LARGE_PROCS} procedures"
    )

    speedup = (
        serial["seconds"] / parallel["seconds"]
        if parallel["seconds"]
        else 0.0
    )
    efficiency = speedup / jobs if jobs else 0.0

    row = {
        "procedures": LARGE_PROCS,
        "generate_seconds": round(generate_seconds, 3),
        "cells": cells,
        "serial_seconds": serial["seconds"],
        "parallel_seconds": parallel["seconds"],
        "parallel_jobs": jobs,
        "speedup": round(speedup, 3),
        "efficiency": round(efficiency, 3),
        "cells_per_second": round(cells_per_second, 1),
        "serial_peak_rss_mb": serial["peak_rss_mb"],
        "parallel_peak_rss_mb": parallel["peak_rss_mb"],
        "arena_stream_records": parallel["stream_records"],
        "pickle_payload_entries": parallel["pickle_entries"],
        "digest": serial["digest"][:16],
    }
    throughput_row = {
        "procedures": LARGE_PROCS,
        "cells": cells,
        "cells_per_second": round(cells_per_second, 1),
        "peak_rss_mb": serial["peak_rss_mb"],
    }
    if _cpu_constrained(jobs):
        row["cpu_constrained"] = True
        throughput_row["cpu_constrained"] = True
    report["large"].append(row)
    report["throughput"].append(throughput_row)
    emit_once(
        capfd,
        "pipeline-large",
        f"large {LARGE_PROCS} procs ({cells} cells): serial "
        f"{serial['seconds']:.1f}s ({cells_per_second:.0f} cells/s, "
        f"{serial['peak_rss_mb']:.0f}MiB), jobs={jobs} arena "
        f"{parallel['seconds']:.1f}s (speedup {speedup:.2f}x, "
        f"{parallel['stream_records']} stream records, "
        f"{parallel['pickle_entries']} pickle entries, "
        f"cpus={os.cpu_count()})",
    )
    # The scaling gate runs after the rows are recorded: on a CPU-
    # constrained host the numbers are still published (annotated),
    # but the gate is an explicit skip, not a silent pass.
    if not MANY_CPUS:
        pytest.skip(
            f"parallel-scaling gate needs >= {PARALLEL_JOBS} CPUs "
            f"(host has {os.cpu_count()}); rows recorded as "
            f"cpu_constrained"
        )
    assert speedup >= 1.5, (
        f"expected >=1.5x at {LARGE_PROCS} procedures on a "
        f"{os.cpu_count()}-cpu host, got {speedup:.2f}x"
    )
    assert efficiency >= 0.375, (
        f"scaling efficiency {efficiency:.2f} below 0.375 "
        f"({speedup:.2f}x over {jobs} workers)"
    )
