"""Table 1 — characteristics of the program test suite.

Regenerates the lines / procedures / mean / median columns and measures
the frontend cost of characterizing the whole suite (parse + count)."""

from benchmarks.conftest import emit_once
from repro.suite.characteristics import characterize_suite
from repro.suite.programs import SUITE_PROGRAM_NAMES
from repro.suite.tables import format_table1


def test_table1_characterize_suite(benchmark, capfd):
    rows = benchmark(characterize_suite)
    assert list(rows) == SUITE_PROGRAM_NAMES
    # The paper's skew observation: fpppp and simple are dominated by a
    # single large routine.
    assert rows["fpppp"].skewed and rows["simple"].skewed
    emit_once(capfd, "table1", format_table1(rows=rows))
