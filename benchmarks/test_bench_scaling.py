"""Scaling: analyzer cost vs program size, and the construction-vs-
propagation split.

§3.1.5 argues construction is O(N) per procedure and propagation is
cheap because the lattice is shallow; §4.1 reports that "the cost of
intraprocedural analysis dominates the cost of the interprocedural
phase". This bench verifies both on generated programs of increasing
size.
"""

import time

import pytest

from benchmarks.conftest import emit_once
from repro.config import AnalysisConfig
from repro.ipcp.driver import prepare_program
from repro.ipcp.jump_functions import build_forward_jump_functions
from repro.ipcp.return_functions import build_return_functions
from repro.ipcp.solver import propagate
from repro.suite.generator import GeneratorConfig, generate_program
from repro.testkit import lower

SIZES = [4, 8, 16, 32]


def _source_for(procedures: int) -> str:
    return generate_program(
        seed=procedures,
        config=GeneratorConfig(
            procedures=procedures, max_statements_per_procedure=14
        ),
    )


def _fresh(source):
    return lower(source, "scale.f")


@pytest.mark.parametrize("procedures", SIZES)
def test_scaling_full_analysis(benchmark, procedures):
    """End-to-end analysis time as the call graph grows."""
    from repro.ipcp.driver import analyze_program

    source = _source_for(procedures)

    def setup():
        return (_fresh(source),), {}

    result = benchmark.pedantic(
        lambda program: analyze_program(program, AnalysisConfig()),
        setup=setup,
        rounds=5,
        iterations=1,
    )
    assert result.substituted_constants >= 0


def test_scaling_phase_split(benchmark, capfd):
    """Construction (SSA + value numbering + jump functions) vs
    propagation (worklist solve) wall-time split, per program size."""
    config = AnalysisConfig()
    report_lines = [
        "Phase split: intraprocedural construction vs interprocedural solve",
        f"{'Procs':>6} {'construct (ms)':>15} {'propagate (ms)':>15} {'ratio':>7}",
    ]
    measured = []

    for procedures in SIZES:
        source = _source_for(procedures)
        begin = time.perf_counter()
        program = _fresh(source)
        callgraph, modref = prepare_program(program, config)
        return_map = build_return_functions(program, callgraph, modref)
        table = build_forward_jump_functions(
            program, callgraph, config.jump_function, return_map
        )
        construct = time.perf_counter() - begin

        begin = time.perf_counter()
        propagate(program, callgraph, table)
        solve = time.perf_counter() - begin
        measured.append((procedures, construct, solve))
        ratio = construct / solve if solve else float("inf")
        report_lines.append(
            f"{procedures:>6} {construct * 1000:>15.2f} {solve * 1000:>15.2f} "
            f"{ratio:>7.1f}"
        )

    # The paper's observation: intraprocedural analysis dominates.
    dominated = sum(1 for _p, construct, solve in measured if construct > solve)
    assert dominated >= len(SIZES) - 1
    emit_once(capfd, "scaling", "\n".join(report_lines))

    # Benchmark the solve phase on the largest program (cheap, repeated).
    source = _source_for(SIZES[-1])
    program = _fresh(source)
    callgraph, modref = prepare_program(program, config)
    return_map = build_return_functions(program, callgraph, modref)
    table = build_forward_jump_functions(
        program, callgraph, config.jump_function, return_map
    )
    benchmark(lambda: propagate(program, callgraph, table))
