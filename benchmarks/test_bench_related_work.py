"""Related-work comparison (§5): jump functions vs procedure cloning vs
Wegman–Zadeck procedure integration.

The paper notes integration "potentially detects fewer constants than"
— sic, *more* than — the jump-function framework because it makes call
paths explicit, but that "data is not yet available to indicate whether
the proposed algorithm would perform efficiently in practice". This
bench provides that data on our suite: constants found and the code
growth / time each technique pays.
"""

import pytest

from benchmarks.conftest import emit_once
from repro.config import AnalysisConfig
from repro.ipcp.cloning import clone_for_constants
from repro.ipcp.driver import analyze_program
from repro.ipcp.inlining import integrate_and_propagate
from repro.suite.programs import program_source
from repro.testkit import lower

#: Small, conflict-bearing subset (integration duplicates code; keep the
#: bench quick).
PROGRAMS = ["trfd", "mdg", "fpppp", "spec77"]


def _fresh(name):
    source = program_source(name)
    return lower(source, f"{name}.f")


@pytest.fixture(scope="module")
def comparison_rows():
    rows = []
    for name in PROGRAMS:
        jf = analyze_program(_fresh(name), AnalysisConfig())
        cloned = clone_for_constants(_fresh(name))
        integrated = integrate_and_propagate(_fresh(name), max_depth=4)
        rows.append(
            (
                name,
                jf.substituted_constants,
                cloned.final.substituted_constants,
                integrated.substituted_references,
                integrated.code_growth,
            )
        )
    return rows


def _format(rows):
    lines = [
        "Related-work comparison (substituted references):",
        f"{'Program':<10} {'JumpFns':>8} {'+Cloning':>9} {'Integration':>12} "
        f"{'growth':>7}",
    ]
    for name, jf, cloned, integrated, growth in rows:
        lines.append(
            f"{name:<10} {jf:>8} {cloned:>9} {integrated:>12} {growth:>6.1f}x"
        )
    lines.append(
        "(Integration counts references in MAIN's integrated body — path-"
    )
    lines.append(
        " explicit, so conflicting call sites each keep their constants.)"
    )
    return "\n".join(lines)


def test_jump_function_framework(benchmark, comparison_rows, capfd):
    def run():
        return sum(
            analyze_program(_fresh(name), AnalysisConfig()).substituted_constants
            for name in PROGRAMS
        )

    total = benchmark(run)
    assert total > 0
    emit_once(capfd, "related", _format(comparison_rows))


def test_cloning_pipeline(benchmark, comparison_rows, capfd):
    def run():
        return sum(
            clone_for_constants(_fresh(name)).final.substituted_constants
            for name in PROGRAMS
        )

    total = benchmark(run)
    assert total > 0
    emit_once(capfd, "related", _format(comparison_rows))


def test_procedure_integration(benchmark, comparison_rows, capfd):
    def run():
        return sum(
            integrate_and_propagate(_fresh(name), max_depth=4).substituted_references
            for name in PROGRAMS
        )

    total = benchmark(run)
    assert total >= 0
    emit_once(capfd, "related", _format(comparison_rows))
