"""Ablation: goal-directed procedure cloning (the §5 Metzger-Stroud
direction). Measures the cost of clone-and-reanalyze on a conflict-heavy
workload and reports the constants it recovers."""

import pytest

from benchmarks.conftest import emit_once
from repro.config import AnalysisConfig
from repro.ipcp.cloning import clone_for_constants
from repro.testkit import lower
from repro.suite.builder import SuiteProgramBuilder


def _conflict_workload() -> str:
    """A program where many procedures are called with disagreeing
    constants — ordinary propagation meets everything to bottom."""
    b = SuiteProgramBuilder("cloning-bench")
    for index in range(6):
        b.conflict_calls((index + 1, index + 10), n_refs=4)
    b.conflict_calls((2, 2, 9), n_refs=6)
    b.local_constants(5, 3)
    return b.build()


def _fresh_program(source):
    return lower(source, "clone.f")


def test_cloning_recovers_conflicting_constants(benchmark, capfd):
    source = _conflict_workload()

    def setup():
        return (_fresh_program(source),), {}

    def run(program):
        return clone_for_constants(program, AnalysisConfig())

    report = benchmark.pedantic(run, setup=setup, rounds=5, iterations=1)
    assert report.clones_created >= 6
    assert report.constants_gained > 0
    emit_once(
        capfd,
        "cloning",
        "Cloning ablation (conflict-heavy workload):\n"
        f"  base substituted references:  {report.base.substituted_constants}\n"
        f"  after cloning:                {report.final.substituted_constants}\n"
        f"  clones created:               {report.clones_created}\n"
        f"  constants gained:             {report.constants_gained}",
    )


def test_baseline_without_cloning(benchmark):
    """The no-cloning baseline for the same workload (analysis only)."""
    from repro.ipcp.driver import analyze_program

    source = _conflict_workload()

    def setup():
        return (_fresh_program(source),), {}

    def run(program):
        return analyze_program(program, AnalysisConfig())

    result = benchmark.pedantic(run, setup=setup, rounds=5, iterations=1)
    assert result.substituted_constants >= 0
