"""Ablation: GSA-style jump-function generation vs complete propagation.

§4.2's closing remark claims "the results that we obtained with
complete propagation can be achieved by basing the jump-function
generator on gated single-assignment form". This bench verifies the
equality on the whole suite and compares the cost of the two routes
(re-generation + re-propagation vs substitute + DCE + re-analyze)."""

import pytest

from benchmarks.conftest import emit_once
from repro.config import AnalysisConfig
from repro.suite.programs import SUITE_PROGRAM_NAMES
from repro.suite.tables import run_configuration


@pytest.fixture(scope="module")
def gsa_rows():
    rows = []
    for name in SUITE_PROGRAM_NAMES:
        plain = run_configuration(name, AnalysisConfig())
        complete = run_configuration(name, AnalysisConfig.complete_propagation())
        gsa = run_configuration(name, AnalysisConfig(gsa_refinement=True))
        rows.append((name, plain, complete, gsa))
    return rows


def _format(rows):
    lines = [
        "GSA-style generation vs complete propagation:",
        f"{'Program':<12} {'Plain':>7} {'Complete':>9} {'GSA':>7}",
    ]
    for name, plain, complete, gsa in rows:
        marker = "" if complete == gsa else "  <- MISMATCH"
        lines.append(f"{name:<12} {plain:>7} {complete:>9} {gsa:>7}{marker}")
    return "\n".join(lines)


@pytest.mark.parametrize(
    "technique,config",
    [
        ("complete", AnalysisConfig.complete_propagation()),
        ("gsa", AnalysisConfig(gsa_refinement=True)),
    ],
    ids=["complete", "gsa"],
)
def test_gsa_vs_complete(benchmark, technique, config, gsa_rows, capfd):
    def run():
        return sum(
            run_configuration(name, config) for name in SUITE_PROGRAM_NAMES
        )

    total = benchmark(run)
    assert total > 0
    # The paper's §4.2 equality, on every program.
    assert all(complete == gsa for _n, _p, complete, gsa in gsa_rows)
    emit_once(capfd, "gsa", _format(gsa_rows))
