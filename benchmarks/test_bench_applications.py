"""Application benchmarks: the paper's motivating consumers of
interprocedural constants — subscript linearity (Shen-Li-Yew) and known
trip counts (Eigenmann-Blume) — run over the whole benchmark suite."""

import pytest

from benchmarks.conftest import emit_once
from repro.apps.subscripts import classify_subscripts
from repro.apps.trip_counts import known_trip_counts
from repro.config import AnalysisConfig
from repro.ipcp.driver import analyze_source
from repro.ipcp.return_functions import ReturnFunctionCallModel
from repro.suite.programs import SUITE_PROGRAM_NAMES, program_source

#: A dependence-heavy companion workload: the suite programs use few
#: arrays (the study's metric is reference counts), so the subscript
#: bench runs on a linpack-like kernel collection.
KERNELS = """
      PROGRAM MAIN
      COMMON /DIMS/ LDA, LDB
      LDA = 128
      LDB = 64
      CALL K1(32)
      CALL K2(32)
      CALL K3(32)
      END

      SUBROUTINE K1(N)
      COMMON /DIMS/ LDA, LDB
      INTEGER A(99999)
      DO J = 1, N
      DO I = 1, N
      A(LDA * J + I) = I + J
      ENDDO
      ENDDO
      END

      SUBROUTINE K2(N)
      COMMON /DIMS/ LDA, LDB
      INTEGER B(99999)
      DO K = 1, N
      B(LDB * K + 1) = K
      B(K) = K + 1
      B(K * K) = 0
      ENDDO
      END

      SUBROUTINE K3(N)
      COMMON /DIMS/ LDA, LDB
      INTEGER C(99999)
      READ *, STRIDE
      DO K = 1, N
      C(STRIDE * K) = K
      C(LDA * K) = K
      ENDDO
      END
"""


@pytest.fixture(scope="module")
def analyzed_kernels():
    return analyze_source(KERNELS)


def test_subscript_linearity_study(benchmark, analyzed_kernels, capfd):
    result = analyzed_kernels

    def run():
        without = classify_subscripts(result.program, None, result.return_functions)
        with_ipcp = classify_subscripts(
            result.program, result.constants, result.return_functions
        )
        return without, with_ipcp

    without, with_ipcp = benchmark(run)
    assert with_ipcp.linear > without.linear
    recovered = without.nonlinear - with_ipcp.nonlinear
    emit_once(
        capfd,
        "subscripts",
        "Subscript linearity study (Shen-Li-Yew methodology):\n"
        f"  subscripts in loops:        {without.total}\n"
        f"  linear without IPCP:        {without.linear}\n"
        f"  linear with IPCP:           {with_ipcp.linear}\n"
        f"  nonlinear made linear:      {recovered}/{without.nonlinear} "
        f"({100 * recovered / max(1, without.nonlinear):.0f}%)",
    )


def test_trip_count_study(benchmark, capfd):
    """Known trip counts across the whole benchmark suite, with and
    without interprocedural constants."""

    def run():
        with_counts = 0
        without_counts = 0
        total = 0
        for name in SUITE_PROGRAM_NAMES:
            result = analyze_source(
                program_source(name), AnalysisConfig(), filename=f"{name}.f"
            )
            call_model = ReturnFunctionCallModel(
                result.program, result.return_functions
            )
            for verdict in known_trip_counts(
                result.program, result.constants, call_model
            ):
                total += 1
                if verdict.known:
                    with_counts += 1
            for verdict in known_trip_counts(result.program, None):
                if verdict.known:
                    without_counts += 1
        return total, with_counts, without_counts

    total, with_counts, without_counts = benchmark.pedantic(
        run, rounds=3, iterations=1
    )
    assert with_counts >= without_counts
    emit_once(
        capfd,
        "tripcounts",
        "Known trip counts across the suite (Eigenmann-Blume motivation):\n"
        f"  loops analyzed:                 {total}\n"
        f"  known without IPCP constants:   {without_counts}\n"
        f"  known with IPCP constants:      {with_counts}",
    )
