"""Shared benchmark helpers.

Every benchmark module both *times* its pipeline stage (pytest-benchmark)
and *prints* the regenerated table so the run's output contains the same
rows the paper reports. Printing uses ``capfd.disabled()`` so the tables
appear even though pytest captures test output.
"""

from __future__ import annotations

import pytest

_printed = set()


def emit_once(capfd, key: str, text: str) -> None:
    """Print ``text`` to the real terminal, once per session per key."""
    if key in _printed:
        return
    _printed.add(key)
    with capfd.disabled():
        print()
        print(text)
        print()
