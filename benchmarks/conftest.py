"""Shared benchmark helpers.

Every benchmark module both *times* its pipeline stage (pytest-benchmark)
and *prints* the regenerated table so the run's output contains the same
rows the paper reports. The printing helper (and the parse-and-lower
helpers the modules use) live in :mod:`repro.testkit`, shared with the
test suite; this conftest re-exports them and applies the ``bench``
marker to everything collected here.
"""

from __future__ import annotations

import pytest

from repro.testkit import emit_once, lower  # noqa: F401 — re-exports


def pytest_collection_modifyitems(config, items):
    for item in items:
        if "/benchmarks/" in str(item.fspath):
            item.add_marker(pytest.mark.bench)
