"""Ablation: worklist discipline in the interprocedural solver.

The paper uses "a simple worklist iterative scheme" and notes the
fixpoint is cheap because the lattice has depth 2. This bench compares
FIFO, LIFO, and priority (reverse-postorder wavefront) worklists on the
suite: same fixpoint, different amounts of work (procedure visits /
jump-function evaluations).
"""

import pytest

from benchmarks.conftest import emit_once
from repro.config import AnalysisConfig
from repro.ipcp.driver import prepare_program
from repro.ipcp.jump_functions import build_forward_jump_functions
from repro.ipcp.return_functions import build_return_functions
from repro.ipcp.solver import propagate
from repro.suite.programs import SUITE_PROGRAM_NAMES, program_source
from repro.testkit import lower


@pytest.fixture(scope="module")
def prepared_suite():
    """Suite programs prepared through jump-function construction, so the
    benchmark isolates the propagation step."""
    prepared = []
    config = AnalysisConfig()
    for name in SUITE_PROGRAM_NAMES:
        source = program_source(name)
        program = lower(source, f"{name}.f")
        callgraph, modref = prepare_program(program, config)
        return_map = build_return_functions(program, callgraph, modref)
        table = build_forward_jump_functions(
            program, callgraph, config.jump_function, return_map
        )
        prepared.append((name, program, callgraph, table))
    return prepared


def _work_report(prepared, strategy):
    lines = [
        f"Solver ablation ({strategy} worklist):",
        f"{'Program':<12} {'Visits':>7} {'JF evals':>9} {'Meets':>7} {'Lowerings':>10}",
    ]
    for name, program, callgraph, table in prepared:
        result = propagate(program, callgraph, table, strategy=strategy)
        stats = result.stats
        lines.append(
            f"{name:<12} {stats.procedure_visits:>7} "
            f"{stats.jump_function_evaluations:>9} {stats.meets:>7} "
            f"{stats.lowerings:>10}"
        )
    return "\n".join(lines)


@pytest.mark.parametrize("strategy", ["fifo", "lifo", "priority"])
def test_solver_strategy(benchmark, prepared_suite, strategy, capfd):
    def run():
        pairs = 0
        for _name, program, callgraph, table in prepared_suite:
            result = propagate(program, callgraph, table, strategy=strategy)
            pairs += result.constants.total_pairs()
        return pairs

    pairs = benchmark(run)
    assert pairs > 0
    emit_once(
        capfd,
        f"solver-{strategy}",
        _work_report(prepared_suite, strategy),
    )


def test_solver_binding_multigraph(benchmark, prepared_suite, capfd):
    """The binding multi-graph formulation (§2's alternative): parameter-
    grained scheduling instead of procedure-grained."""
    from repro.ipcp.binding_graph import propagate_binding_graph

    def run():
        pairs = 0
        for _name, program, callgraph, table in prepared_suite:
            result = propagate_binding_graph(program, callgraph, table)
            pairs += result.constants.total_pairs()
        return pairs

    pairs = benchmark(run)
    assert pairs > 0

    lines = [
        "Solver ablation (binding multi-graph):",
        f"{'Program':<12} {'Node visits':>12} {'JF evals':>9} {'Lowerings':>10}",
    ]
    for name, program, callgraph, table in prepared_suite:
        result = propagate_binding_graph(program, callgraph, table)
        stats = result.stats
        lines.append(
            f"{name:<12} {stats.procedure_visits:>12} "
            f"{stats.jump_function_evaluations:>9} {stats.lowerings:>10}"
        )
    emit_once(capfd, "solver-binding", "\n".join(lines))


def test_solver_fixpoint_identical_across_strategies(benchmark, prepared_suite):
    """Both disciplines reach the same CONSTANTS sets (benchmarked over
    the comparison run)."""

    def run():
        mismatches = 0
        for _name, program, callgraph, table in prepared_suite:
            fifo = propagate(program, callgraph, table, strategy="fifo")
            lifo = propagate(program, callgraph, table, strategy="lifo")
            for procedure in program:
                if fifo.constants.constants_of(
                    procedure.name
                ) != lifo.constants.constants_of(procedure.name):
                    mismatches += 1
        return mismatches

    assert benchmark(run) == 0
