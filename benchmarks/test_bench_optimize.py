"""Measured dynamic speedups of the IPCP-driven optimization backend.

For every golden-corpus program this benchmark interprets the fresh
(never-analyzed) lowering and the optimized program with identical
inputs, recording

- byte-identity of PRINT output (differential equivalence — asserted,
  never just recorded),
- dynamic op counters (steps / branches / calls) before and after,
- best-of-N interpreted wall time per execution and the speedup,
- per-pass attribution: dynamic steps under each cumulative pass
  prefix (fold; fold+branches; fold+branches+unswitch; full pipeline),
  so each pass's marginal step savings are visible.

``BENCH_OPT.json`` holds one row per program plus the aggregate. The
acceptance gate applies to the *constant-heavy subset* — programs where
the analysis statically substituted at least
:data:`CONSTANT_HEAVY_MIN_SUBST` constant references (the paper-suite
members, where interprocedural constants actually reach hot code):
every such program must execute strictly fewer dynamic steps after
optimization, and the geometric-mean interpreted-runtime speedup must
be >= 1.3x.

``BENCH_OPT_TIER`` picks the measurement budget: ``small`` (default,
CI-friendly) or ``full`` (longer timing windows, tighter variance).
"""

import json
import math
import os
import time
from pathlib import Path

import pytest

from benchmarks.conftest import emit_once
from repro.engine.memo import fresh_program
from repro.ir.interp import run_program
from repro.opt import PASS_NAMES, optimize_source
from repro.oracle.golden import golden_programs

REPO_ROOT = Path(__file__).resolve().parents[1]
REPORT_PATH = REPO_ROOT / "BENCH_OPT.json"

TIER = os.environ.get("BENCH_OPT_TIER", "small")
#: Per-measurement wall-clock budget (seconds) and timing rounds.
BUDGET_S = {"small": 0.015, "full": 0.08}.get(TIER, 0.015)
ROUNDS = {"small": 3, "full": 5}.get(TIER, 3)

#: Static substitution floor for the "constant-heavy" gate subset.
CONSTANT_HEAVY_MIN_SUBST = 25

#: Geomean interpreted-runtime speedup floor on that subset.
SPEEDUP_GATE = 1.3

#: Input feed for programs that READ (unconsumed suffix is harmless).
INPUTS = (3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8)

ORIGINAL_FUEL = 2_000_000
OPTIMIZED_FUEL = 8_000_000

#: Cumulative pass prefixes, in pipeline order, for attribution.
CUMULATIVE = tuple(
    tuple(PASS_NAMES[: index + 1]) for index in range(len(PASS_NAMES))
)


def _timed_per_run(program, fuel: float) -> float:
    """Best-of-ROUNDS mean seconds per interpretation."""
    probe_start = time.perf_counter()
    run_program(program, INPUTS, fuel)
    probe = time.perf_counter() - probe_start
    repeats = max(3, min(200, int(BUDGET_S / max(probe, 1e-6))))
    best = None
    for _ in range(ROUNDS):
        start = time.perf_counter()
        for _ in range(repeats):
            run_program(program, INPUTS, fuel)
        mean = (time.perf_counter() - start) / repeats
        if best is None or mean < best:
            best = mean
    return best


@pytest.fixture(scope="module")
def report():
    data = {
        "tier": TIER,
        "cpu_count": os.cpu_count(),
        "passes": list(PASS_NAMES),
        "constant_heavy_min_substitutions": CONSTANT_HEAVY_MIN_SUBST,
        "speedup_gate": SPEEDUP_GATE,
        "programs": [],
        "aggregate": {},
    }
    yield data
    REPORT_PATH.write_text(json.dumps(data, indent=2) + "\n")


def test_optimization_speedups(report, capfd):
    rows = []
    for name, golden in sorted(golden_programs().items()):
        original_program = fresh_program(golden.source, f"{name}.f")
        original_trace = run_program(original_program, INPUTS, ORIGINAL_FUEL)

        # Per-pass attribution: dynamic steps under each cumulative
        # pass prefix. The last prefix IS the full pipeline — reuse it.
        attribution = {}
        previous_steps = original_trace.steps
        result = opt_report = optimized_trace = None
        for prefix in CUMULATIVE:
            result, opt_report = optimize_source(
                golden.source, golden.config, passes=prefix
            )
            optimized_trace = run_program(
                result.program, INPUTS, OPTIMIZED_FUEL
            )
            attribution[prefix[-1]] = {
                "steps": optimized_trace.steps,
                "steps_saved": previous_steps - optimized_trace.steps,
            }
            previous_steps = optimized_trace.steps

        equivalent = original_trace.output == optimized_trace.output
        assert equivalent, (
            f"{name}: optimized output diverged from the original"
        )

        original_seconds = _timed_per_run(original_program, ORIGINAL_FUEL)
        optimized_seconds = _timed_per_run(result.program, OPTIMIZED_FUEL)
        speedup = (
            original_seconds / optimized_seconds if optimized_seconds else 0.0
        )
        substituted = result.substituted_constants
        row = {
            "program": name,
            "substituted_constants": substituted,
            "static_changes": opt_report.total_changes,
            "constant_heavy": substituted >= CONSTANT_HEAVY_MIN_SUBST,
            "equivalent": equivalent,
            "original": dict(original_trace.dynamic_counters()),
            "optimized": dict(optimized_trace.dynamic_counters()),
            "step_reduction": original_trace.steps - optimized_trace.steps,
            "original_us_per_run": round(original_seconds * 1e6, 2),
            "optimized_us_per_run": round(optimized_seconds * 1e6, 2),
            "speedup": round(speedup, 3),
            "per_pass_steps": attribution,
        }
        rows.append(row)
        report["programs"].append(row)

    heavy = [row for row in rows if row["constant_heavy"]]
    assert heavy, "golden corpus lost its constant-heavy members"
    for row in heavy:
        assert row["step_reduction"] > 0, (
            f"{row['program']}: optimization did not strictly reduce "
            f"dynamic steps ({row['original']['steps']} -> "
            f"{row['optimized']['steps']})"
        )
    geomean = math.exp(
        sum(math.log(row["speedup"]) for row in heavy) / len(heavy)
    )
    total_saved = sum(row["step_reduction"] for row in rows)
    report["aggregate"] = {
        "programs": len(rows),
        "constant_heavy_programs": len(heavy),
        "geomean_speedup_constant_heavy": round(geomean, 3),
        "geomean_speedup_all": round(
            math.exp(
                sum(math.log(r["speedup"]) for r in rows if r["speedup"])
                / len(rows)
            ),
            3,
        ),
        "total_steps_saved": total_saved,
    }
    emit_once(
        capfd,
        "bench-optimize",
        f"optimize: {len(rows)} programs, {len(heavy)} constant-heavy, "
        f"geomean speedup {geomean:.2f}x (gate {SPEEDUP_GATE}x), "
        f"{total_saved} dynamic steps saved",
    )
    assert geomean >= SPEEDUP_GATE, (
        f"geomean interpreted-runtime speedup {geomean:.3f}x on the "
        f"constant-heavy subset is below the {SPEEDUP_GATE}x gate"
    )
