"""The reproduction scorecard: measured tables vs the paper's published
numbers — relationship checks and rank correlations, printed with the
benchmark run."""

import pytest

from benchmarks.conftest import emit_once
from repro.suite.paper_data import PAPER_TABLE2, PAPER_TABLE3, compare_with_measured
from repro.suite.tables import compute_table2, compute_table3


def _side_by_side(table2, table3):
    lines = [
        "Paper vs measured (Poly with returns | No MOD | Intra-only):",
        f"{'Program':<12} {'paper':>6} {'ours':>6}   {'paper':>6} {'ours':>6}   "
        f"{'paper':>6} {'ours':>6}",
    ]
    by2 = {r.program: r for r in table2}
    by3 = {r.program: r for r in table3}
    for name in by2:
        lines.append(
            f"{name:<12} {PAPER_TABLE2[name][0]:>6} {by2[name].polynomial:>6}   "
            f"{PAPER_TABLE3[name][0]:>6} {by3[name].polynomial_without_mod:>6}   "
            f"{PAPER_TABLE3[name][3]:>6} {by3[name].intraprocedural:>6}"
        )
    return "\n".join(lines)


def test_paper_agreement(benchmark, capfd):
    table2 = compute_table2()
    table3 = compute_table3()

    agreement = benchmark.pedantic(
        compare_with_measured, args=(table2, table3), rounds=3, iterations=1
    )
    assert agreement.agrees, agreement.violations
    assert min(agreement.rank_correlations.values()) >= 0.8
    emit_once(
        capfd,
        "agreement",
        _side_by_side(table2, table3) + "\n\n" + agreement.format(),
    )
