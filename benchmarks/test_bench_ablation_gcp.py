"""Ablation: the gcp oracle (§3.1 leaves the choice open between
"intraprocedural constant propagation or value numbering"). Compares
the paper's value-numbering oracle against a branch-sensitive SCCP
oracle on the full suite: constants found and analysis cost."""

import pytest

from benchmarks.conftest import emit_once
from repro.config import AnalysisConfig
from repro.suite.programs import SUITE_PROGRAM_NAMES
from repro.suite.tables import run_configuration


@pytest.fixture(scope="module")
def oracle_rows():
    rows = []
    for name in SUITE_PROGRAM_NAMES:
        vn = run_configuration(name, AnalysisConfig())
        sccp = run_configuration(name, AnalysisConfig(gcp_oracle="sccp"))
        rows.append((name, vn, sccp))
    return rows


def _format(rows):
    lines = [
        "gcp oracle ablation (substituted references):",
        f"{'Program':<12} {'VN oracle':>10} {'SCCP oracle':>12} {'delta':>6}",
    ]
    for name, vn, sccp in rows:
        lines.append(f"{name:<12} {vn:>10} {sccp:>12} {sccp - vn:>+6}")
    return "\n".join(lines)


@pytest.mark.parametrize("oracle", ["value_numbering", "sccp"])
def test_gcp_oracle(benchmark, oracle, oracle_rows, capfd):
    config = AnalysisConfig(gcp_oracle=oracle)

    def run():
        return sum(
            run_configuration(name, config) for name in SUITE_PROGRAM_NAMES
        )

    total = benchmark(run)
    assert total > 0
    # The SCCP oracle dominates pointwise.
    assert all(sccp >= vn for _name, vn, sccp in oracle_rows)
    emit_once(capfd, "gcp-oracle", _format(oracle_rows))
