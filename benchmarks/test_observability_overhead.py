"""Gate the combined request-scoped-telemetry overhead (<= 3%).

The serving stack can now run with structured logging, tracing, a
correlation context, and per-request stage timelines all at once. The
acceptance bar is that the *disabled* cost of all four layers stays
under 3% of analysis wall time — observability that taxes every
untraced run would never be left enabled in CI.

As with the tracing gate in ``test_bench_pipeline.py``, a direct
enabled-vs-disabled wall diff is noise-bound on a 1-CPU container, so
the gate is structural plus microbenchmark: assert the disabled paths
allocate nothing, measure what each disabled guard actually costs,
count how many instrumented sites a real fully-telemetered run hits,
and bound the worst-case product against 3% of the disabled run.
"""

from __future__ import annotations

import io
import json
import time
from pathlib import Path

import pytest

from benchmarks.conftest import emit_once
from repro.config import AnalysisConfig
from repro.engine.memo import clear_memos
from repro.ipcp.driver import analyze_source
from repro.obs import context, log, timeline, trace
from repro.obs.log import validate_log_records
from repro.obs.trace import _NULL_SPAN, validate_chrome_trace
from repro.suite.generator import GeneratorConfig, generate_program

REPO_ROOT = Path(__file__).resolve().parents[1]
REPORT_PATH = REPO_ROOT / "BENCH_OBSERVABILITY.json"

PROCEDURES = 50
BUDGET_FRACTION = 0.03
MICRO_ITERATIONS = 200_000


def source():
    return generate_program(
        seed=PROCEDURES,
        config=GeneratorConfig(
            procedures=PROCEDURES, max_statements_per_procedure=10
        ),
    )


def fingerprint(result):
    return (
        result.constants.format_report(),
        dict(result.substitution.per_procedure),
        result.transformed_source(),
    )


def timed(fn):
    clear_memos()
    start = time.perf_counter()
    value = fn()
    return time.perf_counter() - start, value


def per_call(fn):
    begin = time.perf_counter()
    for _ in range(MICRO_ITERATIONS):
        fn()
    return (time.perf_counter() - begin) / MICRO_ITERATIONS


def test_combined_telemetry_overhead(capfd):
    text = source()
    config = AnalysisConfig()

    # Structural zero-cost contract of every layer, disabled:
    assert trace.ENABLED is False and trace.active() is None
    assert trace.span("x") is _NULL_SPAN
    assert log.ENABLED is False and log.active() is None
    log.info("never", field=1)  # no logger -> no record object built
    assert context.current() is None
    assert timeline.current_observer() is None

    disabled_seconds, baseline = timed(
        lambda: fingerprint(analyze_source(text, config))
    )

    # One fully-telemetered run: trace + log + context + timeline all
    # on at once — the combined configuration the 3% budget covers.
    stream = io.StringIO()
    observer = timeline.RequestTimeline("bench", op="analyze")
    tracer = trace.enable()
    logger = log.enable(stream)
    timeline.push_observer(observer)
    try:
        with context.request("bench"):
            log.info("request.start", op="analyze")
            enabled_seconds, telemetered = timed(
                lambda: fingerprint(analyze_source(text, config))
            )
            observer.finish("ok")
            log.info("request.end", **observer.entry())
    finally:
        timeline.pop_observer()
        log.disable()
        trace.disable()
    assert telemetered == baseline, (
        "telemetry must not change analysis output"
    )
    assert validate_chrome_trace(tracer.to_chrome()) == []
    assert validate_log_records(stream.getvalue().splitlines()) == []
    assert observer.buckets()["solve"] > 0.0
    trace_sites = len(tracer.events)
    log_sites = logger.records_written
    stage_sites = len(observer.stages)
    assert trace_sites > 0 and log_sites > 0 and stage_sites > 0

    # Disabled per-site costs, each measured at its real guard shape.
    guard_seconds = per_call(
        lambda: trace.instant("never") if trace.ENABLED else None
    )
    null_span_seconds = per_call(lambda: trace.span("never").__enter__())
    log_noop_seconds = per_call(lambda: log.info("never"))
    observer_probe_seconds = per_call(timeline.current_observer)
    context_probe_seconds = per_call(context.current)
    worst_site_seconds = max(
        guard_seconds, null_span_seconds, log_noop_seconds
    )

    # Every event any layer recorded maps to at most one disabled-path
    # site; stage sites additionally probe the observer stack and a
    # logged record at most probes the context. Sum the bound.
    worst_case_seconds = (
        (trace_sites + log_sites) * worst_site_seconds
        + stage_sites * observer_probe_seconds
        + log_sites * context_probe_seconds
    )
    budget_seconds = BUDGET_FRACTION * disabled_seconds
    assert worst_case_seconds <= budget_seconds, (
        f"combined disabled-telemetry bound "
        f"{worst_case_seconds * 1e3:.3f}ms exceeds "
        f"{BUDGET_FRACTION:.0%} of the {disabled_seconds * 1e3:.0f}ms "
        f"untelemetered run ({trace_sites} trace + {log_sites} log + "
        f"{stage_sites} stage sites)"
    )

    row = {
        "procedures": PROCEDURES,
        "disabled_seconds": round(disabled_seconds, 4),
        "enabled_seconds": round(enabled_seconds, 4),
        "trace_events": trace_sites,
        "log_records": log_sites,
        "stage_sites": stage_sites,
        "guard_nanoseconds": round(guard_seconds * 1e9, 1),
        "null_span_nanoseconds": round(null_span_seconds * 1e9, 1),
        "log_noop_nanoseconds": round(log_noop_seconds * 1e9, 1),
        "observer_probe_nanoseconds": round(
            observer_probe_seconds * 1e9, 1
        ),
        "context_probe_nanoseconds": round(
            context_probe_seconds * 1e9, 1
        ),
        "worst_case_overhead_pct": round(
            100.0 * worst_case_seconds / disabled_seconds, 4
        )
        if disabled_seconds
        else 0.0,
        "budget_pct": 100.0 * BUDGET_FRACTION,
    }
    REPORT_PATH.write_text(json.dumps(row, indent=2) + "\n")
    emit_once(
        capfd,
        "observability-combined",
        f"combined telemetry {PROCEDURES} procs: disabled "
        f"{disabled_seconds:.2f}s, telemetered {enabled_seconds:.2f}s "
        f"({trace_sites} trace events, {log_sites} log records); "
        f"disabled-path bound {row['worst_case_overhead_pct']:.3f}% "
        f"(budget {row['budget_pct']:.0f}%)",
    )


def test_enabled_logging_is_bounded_per_record(capfd):
    """Enabled logging must also stay cheap: one JSONL record to an
    in-memory stream lands in single-digit microseconds, so a daemon
    emitting a handful of records per request cannot dent a millisecond
    budget."""
    stream = io.StringIO()
    log.enable(stream, max_per_event=100_000)
    try:
        with context.request("bench"):
            iterations = 20_000
            begin = time.perf_counter()
            for index in range(iterations):
                log.info("bench.record", index=index, value=1.5)
            record_seconds = (time.perf_counter() - begin) / iterations
    finally:
        log.disable()
    assert record_seconds < 100e-6, (
        f"one log record costs {record_seconds * 1e6:.1f}us; "
        f"expected well under 100us"
    )
    emit_once(
        capfd,
        "observability-record-cost",
        f"enabled log record: {record_seconds * 1e6:.2f}us "
        f"(in-memory stream, context installed)",
    )
