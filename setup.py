"""Legacy setup shim so `pip install -e . --no-use-pep517` works in
environments without the `wheel` package (configuration lives in
pyproject.toml)."""

from setuptools import setup

setup()
