"""Where the polynomial jump function earns its keep.

Run:  python examples/poly_vs_pass.py

On the paper's whole FORTRAN suite, "the polynomial and pass-through
parameter techniques found the same set of constants" — scientific
codes pass their configuration values through unchanged. This example
shows the program shape the suite never contained: a call chain that
*computes* with its parameters between hops (halo widths, strides
doubled per level, index arithmetic). Pass-through jump functions lose
the trail at the first arithmetic hop; polynomial jump functions carry
it to the bottom.
"""

from repro import AnalysisConfig, JumpFunctionKind, analyze_source

PROGRAM = """
      PROGRAM MAIN
      CALL LEVEL1(8, 2)
      END

      SUBROUTINE LEVEL1(N, HALO)
      INTEGER N, HALO
      CALL LEVEL2(N * 2, HALO + 1)
      RETURN
      END

      SUBROUTINE LEVEL2(M, PAD)
      INTEGER M, PAD
      CALL LEVEL3(M * M + PAD)
      RETURN
      END

      SUBROUTINE LEVEL3(SIZE)
      INTEGER SIZE
      WORDS = SIZE * 4
      SLOTS = SIZE + 1
      PRINT *, WORDS, SLOTS
      RETURN
      END
"""


def main() -> None:
    print("Chain: LEVEL1(8,2) -> LEVEL2(N*2, HALO+1) -> LEVEL3(M*M + PAD)\n")
    header = f"{'jump function':>16} {'constants found':>16} {'refs substituted':>17}"
    print(header)
    print("-" * len(header))
    for kind in JumpFunctionKind:
        result = analyze_source(PROGRAM, AnalysisConfig(jump_function=kind))
        print(
            f"{kind.value:>16} {result.constants.total_pairs():>16} "
            f"{result.substituted_constants:>17}"
        )

    result = analyze_source(PROGRAM)
    print("\nPolynomial jump functions compose the arithmetic:")
    print(result.constants.format_report())
    print(
        "\n(LEVEL2 receives M = 16, PAD = 3; LEVEL3 receives SIZE = 259 —"
        "\nderivable only by evaluating M*M + PAD as a polynomial of"
        "\nLEVEL2's entry values.)"
    )


if __name__ == "__main__":
    main()
