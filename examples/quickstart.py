"""Quickstart: analyze a small program with every jump function.

Run:  python examples/quickstart.py

Demonstrates the core public API: parse + analyze MiniFortran source,
inspect CONSTANTS(p), compare the four forward jump function
implementations, and print the transformed (constant-substituted)
source.
"""

from repro import AnalysisConfig, JumpFunctionKind, analyze_source

PROGRAM = """
      PROGRAM MAIN
      INTEGER N
      COMMON /CFG/ SCALE
      SCALE = 10
      N = 100
      CALL PROCESS(N, 5)
      END

      SUBROUTINE PROCESS(LIMIT, STEP)
      INTEGER LIMIT, STEP, TOTAL
      COMMON /CFG/ SCALE
      TOTAL = 0
      DO I = 1, LIMIT, 1
        TOTAL = TOTAL + STEP
      ENDDO
      CALL REPORT(TOTAL, LIMIT * SCALE)
      RETURN
      END

      SUBROUTINE REPORT(VALUE, CEILING)
      INTEGER VALUE, CEILING
      IF (VALUE .GT. CEILING) THEN
        PRINT *, 'overflow', VALUE
      ELSE
        PRINT *, 'ok', VALUE
      ENDIF
      RETURN
      END
"""


def main() -> None:
    print("=== default analysis (polynomial jump functions) ===")
    result = analyze_source(PROGRAM, filename="<string>")
    print(result.constants.format_report())
    print(f"\nsubstituted constant references: {result.substituted_constants}")

    print("\n=== jump function comparison ===")
    print(f"{'kind':>16} {'constant pairs':>15} {'substituted refs':>17}")
    for kind in JumpFunctionKind:
        run = analyze_source(PROGRAM, AnalysisConfig(jump_function=kind))
        print(
            f"{kind.value:>16} {run.constants.total_pairs():>15} "
            f"{run.substituted_constants:>17}"
        )

    print("\n=== transformed source (constants substituted) ===")
    print(result.transformed_source())


if __name__ == "__main__":
    main()
