"""Procedure cloning demo (the paper's §5 / Metzger-Stroud direction).

Run:  python examples/cloning_demo.py

A stencil kernel is called with two different constant strides. The
ordinary propagation meets 4 ∧ 8 = ⊥ and learns nothing; goal-directed
cloning splits the call sites by their incoming constant signatures,
giving each clone its own constant.
"""

from repro.frontend.parser import parse_source
from repro.frontend.source import SourceFile
from repro.ipcp.cloning import clone_for_constants
from repro.ir.lowering import lower_module

PROGRAM = """
      PROGRAM MAIN
      CALL STENCIL(4)
      CALL STENCIL(4)
      CALL STENCIL(8)
      CALL STENCIL(8)
      CALL STENCIL(8)
      END

      SUBROUTINE STENCIL(STRIDE)
      INTEGER STRIDE, ACC
      ACC = 0
      DO I = 1, 256, 1
        ACC = ACC + I * STRIDE
      ENDDO
      PRINT *, 'stride', STRIDE, 'acc', ACC
      RETURN
      END
"""


def main() -> None:
    source = SourceFile("stencil.f", PROGRAM)
    program = lower_module(parse_source(PROGRAM, "stencil.f"), source)

    report = clone_for_constants(program)

    print("Before cloning:")
    print(f"  CONSTANTS: {report.base.constants.format_report()}")
    print(f"  substituted references: {report.base.substituted_constants}")

    print("\nCloning plan executed:")
    for original, clones in report.clones.items():
        print(f"  {original} -> {', '.join(clones)}")

    print("\nAfter cloning:")
    print(report.final.constants.format_report())
    print(f"  substituted references: {report.final.substituted_constants}")
    print(f"  constants gained: {report.constants_gained}")

    print("\nEvery call site now reaches a body specialized to its stride —")
    print("the loop `ACC = ACC + I * STRIDE` has a known multiplier in each clone.")


if __name__ == "__main__":
    main()
