"""Regenerate every table and figure of the paper's evaluation.

Run:  python examples/paper_tables.py

Takes a couple of seconds: 12 benchmark programs x 10 analysis
configurations. Compare the output against EXPERIMENTS.md (paper values
vs measured values).
"""

from repro.suite.tables import format_table1, format_table2, format_table3


def figure1() -> str:
    from repro.lattice import BOTTOM, TOP, const

    elements = [("T", TOP), ("3", const(3)), ("4", const(4)), ("_|_", BOTTOM)]
    lines = ["Figure 1: lattice meet table"]
    for label_a, a in elements:
        row = "  ".join(f"{label_a} ^ {label_b} = {a.meet(b)}" for label_b, b in elements)
        lines.append("  " + row)
    return "\n".join(lines)


def main() -> None:
    print(figure1())
    print()
    print(format_table1())
    print()
    print(format_table2())
    print()
    print(format_table3())


if __name__ == "__main__":
    main()
