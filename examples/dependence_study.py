"""The Shen-Li-Yew dependence motivation, end to end.

Run:  python examples/dependence_study.py

The paper's introduction cites Shen, Li & Yew: with interprocedural
constants asserted, "approximately 50 percent of the subscripts which
had previously been considered nonlinear were found to be linear". This
example runs that methodology on a linpack-like workload: classify every
in-loop array subscript as linear/nonlinear, first with no
interprocedural information and then with the CONSTANTS sets, and also
reports the known loop trip counts (the Eigenmann-Blume motivation).
"""

from repro import analyze_source
from repro.apps.subscripts import classify_subscripts
from repro.apps.trip_counts import known_trip_counts
from repro.ipcp.return_functions import ReturnFunctionCallModel

PROGRAM = """
      PROGRAM MAIN
      COMMON /DIMS/ LDA
      LDA = 128
      CALL FACTOR(64)
      CALL SOLVE(64)
      END

      SUBROUTINE FACTOR(N)
      COMMON /DIMS/ LDA
      INTEGER A(20000)
      DO J = 1, N
        DO I = 1, N
          A(LDA * J + I) = A(LDA * J + I) + 1
        ENDDO
      ENDDO
      RETURN
      END

      SUBROUTINE SOLVE(N)
      COMMON /DIMS/ LDA
      INTEGER B(20000), X(200)
      DO K = 1, N
        X(K) = B(LDA * K)
        B(K * K) = 0
      ENDDO
      RETURN
      END
"""


def main() -> None:
    result = analyze_source(PROGRAM)

    print("CONSTANTS discovered:")
    print(result.constants.format_report())

    without = classify_subscripts(result.program, None, result.return_functions)
    with_ipcp = classify_subscripts(
        result.program, result.constants, result.return_functions
    )

    print("\nSubscript linearity (dependence-analyzer's view):")
    print(f"  without interprocedural constants: "
          f"{without.linear}/{without.total} linear")
    print(f"  with interprocedural constants:    "
          f"{with_ipcp.linear}/{with_ipcp.total} linear")
    recovered = without.nonlinear - with_ipcp.nonlinear
    if without.nonlinear:
        print(f"  nonlinear subscripts linearized:   {recovered}/"
              f"{without.nonlinear} "
              f"({100 * recovered / without.nonlinear:.0f}%)")

    print("\nKnown trip counts (parallelization profitability):")
    call_model = ReturnFunctionCallModel(result.program, result.return_functions)
    for verdict in known_trip_counts(result.program, result.constants, call_model):
        if verdict.induction_variable is None:
            continue
        status = str(verdict.count) if verdict.known else "unknown"
        print(f"  {verdict.procedure_name}: loop over "
              f"{verdict.induction_variable.var.name} -> {status} trips")


if __name__ == "__main__":
    main()
