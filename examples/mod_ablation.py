"""Information ablation: what MOD summaries and return jump functions
are each worth (the Table 2 / Table 3 levers, on one program).

Run:  python examples/mod_ablation.py

The program routes a configuration constant through an initialization
routine (return-function territory) and past an intervening helper call
(MOD territory), so each piece of information can be toggled and its
loss observed in isolation.
"""

from repro import AnalysisConfig, JumpFunctionKind, analyze_source

PROGRAM = """
      PROGRAM MAIN
      COMMON /CFG/ BLOCK
      CALL SETUP
      CALL DRIVER
      END

      SUBROUTINE SETUP
      COMMON /CFG/ BLOCK
      BLOCK = 16
      RETURN
      END

      SUBROUTINE DRIVER
      COMMON /CFG/ BLOCK
      INTEGER T
      T = 0
      CALL LOG(T)
      CALL KERNEL
      RETURN
      END

      SUBROUTINE LOG(CODE)
      INTEGER CODE, DUMMY
      DUMMY = CODE + 1
      RETURN
      END

      SUBROUTINE KERNEL
      COMMON /CFG/ BLOCK
      INTEGER S
      S = 0
      DO I = 1, BLOCK
        S = S + I
      ENDDO
      PRINT *, S
      RETURN
      END
"""

CONFIGURATIONS = [
    ("polynomial + returns + MOD", AnalysisConfig()),
    ("polynomial + returns, no MOD", AnalysisConfig(use_mod=False)),
    ("polynomial + MOD, no returns", AnalysisConfig(use_return_functions=False)),
    ("literal jump functions", AnalysisConfig(jump_function=JumpFunctionKind.LITERAL)),
    ("intraprocedural only", AnalysisConfig.intraprocedural_only()),
    ("complete propagation", AnalysisConfig.complete_propagation()),
]


def main() -> None:
    print(f"{'configuration':<34} {'pairs':>6} {'refs':>6}   kernel sees BLOCK?")
    print("-" * 72)
    for label, config in CONFIGURATIONS:
        result = analyze_source(PROGRAM, config)
        kernel = {
            var.name: value
            for var, value in result.constants.constants_of("kernel").items()
        }
        seen = f"yes, BLOCK={kernel['block']}" if "block" in kernel else "no"
        print(
            f"{label:<34} {result.constants.total_pairs():>6} "
            f"{result.substituted_constants:>6}   {seen}"
        )

    print(
        "\nReading the rows: return jump functions carry SETUP's assignment"
        "\nto its callers; MOD information lets BLOCK survive the CALL LOG"
        "\ninside DRIVER; the literal jump function never sees globals at all."
    )


if __name__ == "__main__":
    main()
