"""Loop bounds: the paper's motivating application.

Run:  python examples/loop_bounds.py

Interprocedural constants are often loop bounds (Eigenmann & Blume, cited
in the paper's introduction): knowing them "allows the compiler to make
informed decisions about the profitability of parallel execution". This
example mimics a small scientific code whose grid dimensions are set in
an initialization routine; interprocedural constant propagation recovers
the trip counts of every hot loop, and the reference interpreter
confirms the discovered values against an actual execution.
"""

from repro import AnalysisConfig, analyze_source
from repro.ir.interp import run_source

PROGRAM = """
      PROGRAM OCEANLET
      COMMON /GRID/ NX, NY, NSTEPS
      CALL INIT
      CALL RELAX
      CALL ADVECT
      END

      SUBROUTINE INIT
      COMMON /GRID/ NX, NY, NSTEPS
      NX = 64
      NY = 32
      NSTEPS = 100
      RETURN
      END

      SUBROUTINE RELAX
      COMMON /GRID/ NX, NY, NSTEPS
      INTEGER WORK
      WORK = 0
      DO J = 1, NY
        DO I = 1, NX
          WORK = WORK + I + J
        ENDDO
      ENDDO
      PRINT *, 'relax work units', WORK
      RETURN
      END

      SUBROUTINE ADVECT
      COMMON /GRID/ NX, NY, NSTEPS
      INTEGER MOVED
      MOVED = 0
      DO T = 1, NSTEPS
        MOVED = MOVED + NX
      ENDDO
      PRINT *, 'advected cells', MOVED
      RETURN
      END
"""


def main() -> None:
    result = analyze_source(PROGRAM)

    print("Discovered interprocedural constants:")
    print(result.constants.format_report())

    print("\nLoop-bound implications for the parallelizer:")
    relax = result.constants.constants_of("relax")
    by_name = {var.name: value for var, value in relax.items()}
    nx, ny = by_name.get("nx"), by_name.get("ny")
    if nx and ny:
        print(f"  RELAX nest: {ny} x {nx} = {nx * ny} iterations "
              f"(enough to occupy {min(nx * ny // 64, 32)} workers)")
    advect = {
        var.name: value
        for var, value in result.constants.constants_of("advect").items()
    }
    if "nsteps" in advect:
        print(f"  ADVECT loop: exactly {advect['nsteps']} trips "
              "(outer time loop: keep sequential)")

    print("\nWithout return jump functions the INIT assignments are opaque:")
    blind = analyze_source(PROGRAM, AnalysisConfig(use_return_functions=False))
    print(f"  constants found: {blind.constants.total_pairs()} "
          f"(vs {result.constants.total_pairs()} with return jump functions)")

    print("\nExecution check (reference interpreter):")
    trace = run_source(PROGRAM)
    for line in trace.output:
        print(f"  {line}")


if __name__ == "__main__":
    main()
